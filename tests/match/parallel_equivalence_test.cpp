// Serial-vs-parallel equivalence: --jobs must change the wall clock only.
//
// The contract (MatchOptions::jobs): the report of a parallel run —
// instances, their ORDER, phase1/phase2 statistics, and the structured
// RunStatus — is bit-identical to the serial run's, because every
// candidate-vector seed is a pure function of (graphs, options, seed) and
// results are merged in seed-index order. These tests pin that contract
// over testdata circuits, randomized generated circuits, both matching
// semantics, injected cancellation, and the extract sweep.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "spice/spice.hpp"
#include "util/thread_pool.hpp"

namespace subg {
namespace {

void expect_reports_equal(const MatchReport& serial, const MatchReport& parallel,
                          const std::string& what) {
  SCOPED_TRACE(what);
  // Instances: same count, same order, same full mappings.
  ASSERT_EQ(serial.instances.size(), parallel.instances.size());
  for (std::size_t i = 0; i < serial.instances.size(); ++i) {
    EXPECT_EQ(serial.instances[i].device_image,
              parallel.instances[i].device_image)
        << "instance " << i;
    EXPECT_EQ(serial.instances[i].net_image, parallel.instances[i].net_image)
        << "instance " << i;
  }
  // Phase I is identical by construction (same refinement, shared or not).
  EXPECT_EQ(serial.phase1.feasible, parallel.phase1.feasible);
  EXPECT_EQ(serial.phase1.key, parallel.phase1.key);
  EXPECT_EQ(serial.phase1.candidates, parallel.phase1.candidates);
  EXPECT_EQ(serial.phase1.rounds, parallel.phase1.rounds);
  // Phase II counters are per-candidate and merged; sums must agree.
  EXPECT_EQ(serial.phase2.candidates_tried, parallel.phase2.candidates_tried);
  EXPECT_EQ(serial.phase2.candidates_matched,
            parallel.phase2.candidates_matched);
  EXPECT_EQ(serial.phase2.passes, parallel.phase2.passes);
  EXPECT_EQ(serial.phase2.guesses, parallel.phase2.guesses);
  EXPECT_EQ(serial.phase2.backtracks, parallel.phase2.backtracks);
  EXPECT_EQ(serial.phase2.verify_failures, parallel.phase2.verify_failures);
  EXPECT_EQ(serial.phase2.max_guess_depth, parallel.phase2.max_guess_depth);
  // The structured outcome, reason string, and skip counters.
  EXPECT_EQ(serial.status.outcome, parallel.status.outcome);
  EXPECT_EQ(serial.status.reason, parallel.status.reason);
  EXPECT_EQ(serial.status.candidates_skipped,
            parallel.status.candidates_skipped);
  EXPECT_EQ(serial.status.guesses_abandoned,
            parallel.status.guesses_abandoned);
}

MatchReport run_with_jobs(const Netlist& pattern, const Netlist& host,
                          std::size_t jobs, bool exhaustive = false,
                          Budget budget = {}) {
  MatchOptions opts;
  opts.jobs = jobs;
  opts.exhaustive = exhaustive;
  opts.budget = budget;
  SubgraphMatcher matcher(pattern, host, opts);
  return matcher.find_all();
}

TEST(ParallelEquivalence, GeneratedCircuitsAllCells) {
  cells::CellLibrary lib;
  struct Case {
    const char* cell;
    gen::Generated host;
  };
  std::vector<Case> cases;
  cases.push_back({"fulladder", gen::ripple_carry_adder(12)});
  cases.push_back({"nand2", gen::logic_soup(250, 7)});
  cases.push_back({"xor2", gen::kogge_stone_adder(8)});
  cases.push_back({"inv", gen::decoder(3)});
  for (const Case& c : cases) {
    Netlist pattern = lib.pattern(c.cell);
    MatchReport serial = run_with_jobs(pattern, c.host.netlist, 1);
    MatchReport parallel = run_with_jobs(pattern, c.host.netlist, 8);
    expect_reports_equal(serial, parallel, c.cell);
    EXPECT_GE(serial.count(), c.host.placed_count(c.cell)) << c.cell;
  }
}

TEST(ParallelEquivalence, RandomizedSoupSweep) {
  cells::CellLibrary lib;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    gen::Generated host = gen::logic_soup(180, seed);
    for (const char* cell : {"nand2", "nor2", "inv", "mux2"}) {
      Netlist pattern = lib.pattern(cell);
      MatchReport serial = run_with_jobs(pattern, host.netlist, 1);
      MatchReport parallel = run_with_jobs(pattern, host.netlist, 8);
      expect_reports_equal(serial, parallel,
                           std::string(cell) + " soup " + std::to_string(seed));
    }
  }
}

TEST(ParallelEquivalence, ExhaustiveSemantics) {
  // Exhaustive enumeration explores every guess branch per candidate; the
  // parallel path may only engage with an unbounded limit, and must still
  // agree exactly.
  cells::CellLibrary lib;
  gen::Generated host = gen::sram_array(4, 4);
  for (const char* cell : {"inv", "nand2"}) {
    Netlist pattern = lib.pattern(cell);
    MatchReport serial = run_with_jobs(pattern, host.netlist, 1, true);
    MatchReport parallel = run_with_jobs(pattern, host.netlist, 8, true);
    expect_reports_equal(serial, parallel, std::string("exhaustive ") + cell);
  }
}

TEST(ParallelEquivalence, TestdataCircuits) {
  Design cells_deck =
      spice::read_file(std::string(SUBG_TESTDATA_DIR) + "/cells.sp");
  Design host_deck =
      spice::read_file(std::string(SUBG_TESTDATA_DIR) + "/mux_host.sp");
  Netlist host = host_deck.flatten("main");
  for (const char* cell : {"nand2", "inv"}) {
    Netlist pattern = cells_deck.flatten(cell);
    MatchReport serial = run_with_jobs(pattern, host, 1);
    MatchReport parallel = run_with_jobs(pattern, host, 8);
    expect_reports_equal(serial, parallel, cell);
    EXPECT_GT(serial.count(), 0u) << cell;
  }
}

TEST(ParallelEquivalence, InjectedCancellation) {
  // A token tripped before the run starts is the one cancellation point
  // both modes hit deterministically: everything is skipped, and both
  // reports must agree on that — same outcome, same reason, same counter.
  cells::CellLibrary lib;
  gen::Generated host = gen::ripple_carry_adder(8);
  Netlist pattern = lib.pattern("fulladder");
  CancelToken token;
  token.request();
  Budget budget;
  budget.set_cancel_token(&token);
  MatchReport serial = run_with_jobs(pattern, host.netlist, 1, false, budget);
  MatchReport parallel = run_with_jobs(pattern, host.netlist, 8, false, budget);
  expect_reports_equal(serial, parallel, "cancelled");
  EXPECT_EQ(serial.status.outcome, RunOutcome::kCancelled);
  EXPECT_TRUE(serial.instances.empty());
}

TEST(ParallelEquivalence, ExpiredDeadline) {
  cells::CellLibrary lib;
  gen::Generated host = gen::logic_soup(150, 3);
  Netlist pattern = lib.pattern("nand2");
  Budget budget;
  budget.set_deadline(Budget::Clock::now() - std::chrono::seconds(1));
  MatchReport serial = run_with_jobs(pattern, host.netlist, 1, false, budget);
  MatchReport parallel = run_with_jobs(pattern, host.netlist, 8, false, budget);
  expect_reports_equal(serial, parallel, "expired");
  EXPECT_EQ(serial.status.outcome, RunOutcome::kDeadlineExceeded);
}

TEST(ParallelEquivalence, ExtractSweep) {
  // The extract tier machinery (shared snapshot, concurrent per-cell
  // matches, serial greedy application) must produce the same gate netlist
  // and the same report at every jobs value.
  cells::CellLibrary lib;
  gen::Generated host = gen::register_file(4, 4);
  std::vector<extract::LibraryCell> library;
  for (const char* cell : {"dff", "mux2", "nand2", "inv"}) {
    library.push_back(extract::LibraryCell{cell, lib.pattern(cell)});
  }

  auto run = [&](std::size_t jobs) {
    extract::ExtractOptions opts;
    opts.match.jobs = jobs;
    return extract::extract_gates(host.netlist, library, opts);
  };
  extract::ExtractResult serial = run(1);
  extract::ExtractResult parallel = run(8);

  ASSERT_EQ(serial.report.cells.size(), parallel.report.cells.size());
  for (std::size_t i = 0; i < serial.report.cells.size(); ++i) {
    EXPECT_EQ(serial.report.cells[i].cell, parallel.report.cells[i].cell);
    EXPECT_EQ(serial.report.cells[i].instances,
              parallel.report.cells[i].instances);
    EXPECT_EQ(serial.report.cells[i].devices_replaced,
              parallel.report.cells[i].devices_replaced);
    EXPECT_EQ(serial.report.cells[i].outcome, parallel.report.cells[i].outcome);
  }
  EXPECT_EQ(serial.report.devices_after, parallel.report.devices_after);
  EXPECT_EQ(serial.report.unextracted_primitives,
            parallel.report.unextracted_primitives);
  EXPECT_EQ(serial.report.status.outcome, parallel.report.status.outcome);
  // The gate netlists are not just isomorphic but identical device-for-
  // device (same names, same pins), since acceptance is applied in the
  // same order.
  ASSERT_EQ(serial.netlist.device_count(), parallel.netlist.device_count());
  for (std::uint32_t d = 0; d < serial.netlist.device_count(); ++d) {
    const DeviceId id(d);
    EXPECT_EQ(serial.netlist.device_name(id), parallel.netlist.device_name(id));
    EXPECT_EQ(serial.netlist.device_type_info(id).name,
              parallel.netlist.device_type_info(id).name);
  }
  EXPECT_TRUE(compare_netlists(serial.netlist, parallel.netlist).isomorphic);
}

TEST(ParallelEquivalence, ExternalPoolMatchesOwnedPool) {
  // A caller-owned pool (the extract sweep's shape) must behave like the
  // matcher's own: same report, pool reusable across matches.
  cells::CellLibrary lib;
  gen::Generated host = gen::ripple_carry_adder(6);
  ThreadPool pool(4);
  for (const char* cell : {"fulladder", "xor2"}) {
    Netlist pattern = lib.pattern(cell);
    MatchOptions with_pool;
    with_pool.pool = &pool;
    SubgraphMatcher m(pattern, host.netlist, with_pool);
    MatchReport shared = m.find_all();
    MatchReport serial = run_with_jobs(pattern, host.netlist, 1);
    expect_reports_equal(serial, shared, cell);
  }
}

}  // namespace
}  // namespace subg
