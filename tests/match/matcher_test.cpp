// SubgraphMatcher end-to-end behaviour on hand-built and cell-library
// circuits.
#include <gtest/gtest.h>

#include <set>

#include "cells/cells.hpp"
#include "match/matcher.hpp"
#include "test_circuits.hpp"
#include "util/check.hpp"

namespace subg {
namespace {

using test::Cmos3;

TEST(Matcher, CountsNandChain) {
  // A chain of k NAND2 gates (output feeding one input of the next) must
  // contain exactly k NAND2 instances.
  Cmos3 c;
  constexpr int kGates = 8;
  Netlist host = c.netlist("chain");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  NetId prev = host.add_net("pi");
  for (int i = 0; i < kGates; ++i) {
    NetId other = host.add_net("b" + std::to_string(i));
    NetId y = host.add_net("y" + std::to_string(i));
    c.nand2(host, prev, other, y, vdd, gnd);
    prev = y;
  }
  Netlist pattern = c.nand2_pattern(/*global_rails=*/true);
  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  EXPECT_EQ(report.count(), static_cast<std::size_t>(kGates));
}

TEST(Matcher, InstancesAreDisjointAndValid) {
  Cmos3 c;
  Netlist host = c.netlist("two");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  NetId a1 = host.add_net("a1"), b1 = host.add_net("b1"), y1 = host.add_net("y1");
  NetId a2 = host.add_net("a2"), b2 = host.add_net("b2"), y2 = host.add_net("y2");
  c.nand2(host, a1, b1, y1, vdd, gnd);
  c.nand2(host, a2, b2, y2, vdd, gnd);

  Netlist pattern = c.nand2_pattern(true);
  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 2u);
  std::set<std::uint32_t> all_devices;
  for (const auto& inst : report.instances) {
    ASSERT_EQ(inst.device_image.size(), pattern.device_count());
    ASSERT_EQ(inst.net_image.size(), pattern.net_count());
    for (DeviceId d : inst.device_image) {
      EXPECT_TRUE(all_devices.insert(d.value).second)
          << "instances overlap on device " << d.value;
    }
  }
}

TEST(Matcher, MaxMatchesStopsEarly) {
  Cmos3 c;
  Netlist host = c.netlist();
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  for (int i = 0; i < 5; ++i) {
    c.inv(host, host.add_net("a" + std::to_string(i)),
          host.add_net("y" + std::to_string(i)), vdd, gnd);
  }
  MatchOptions opts;
  opts.max_matches = 2;
  Netlist pattern = c.inv_pattern(true);
  SubgraphMatcher matcher(pattern, host, opts);
  EXPECT_EQ(matcher.find_all().count(), 2u);
}

TEST(Matcher, FindFirst) {
  Cmos3 c;
  Netlist host = c.netlist();
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  c.inv(host, host.add_net("a"), host.add_net("y"), vdd, gnd);
  Netlist pattern = c.inv_pattern(true);
  SubgraphMatcher matcher(pattern, host);
  auto inst = matcher.find_first();
  ASSERT_TRUE(inst.has_value());
  EXPECT_EQ(inst->device_image.size(), 2u);

  Netlist empty_host = c.netlist();
  NetId v2 = empty_host.add_net("vdd"), g2 = empty_host.add_net("gnd");
  empty_host.mark_global(v2);
  empty_host.mark_global(g2);
  NetId x = empty_host.add_net("x"), q = empty_host.add_net("q");
  empty_host.add_device(c.nmos, {x, q, g2});
  Netlist pattern2 = c.inv_pattern(true);
  SubgraphMatcher matcher2(pattern2, empty_host);
  EXPECT_FALSE(matcher2.find_first().has_value());
}

TEST(Matcher, PatternLargerThanHostInfeasible) {
  Cmos3 c;
  Netlist host = c.netlist();
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  c.inv(host, host.add_net("a"), host.add_net("y"), vdd, gnd);
  Netlist pattern = c.nand2_pattern(true);
  // Under the default options the pre-search analyzer refutes this with a
  // device-type-deficit certificate before Phase I ever runs.
  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  EXPECT_EQ(report.infeasible_shortcuts, 1u);
  ASSERT_TRUE(report.infeasibility.has_value());
  EXPECT_EQ(report.infeasibility->rule, "device_type_deficit");
  EXPECT_EQ(report.count(), 0u);
  // With the analyzer off, Phase I's own partition-size check must reach
  // the same conclusion on its own.
  MatchOptions no_analyze;
  no_analyze.analyze = false;
  MatchReport raw = SubgraphMatcher(pattern, host, no_analyze).find_all();
  EXPECT_FALSE(raw.phase1.feasible);
  EXPECT_EQ(raw.count(), 0u);
}

TEST(Matcher, EmptyPatternThrows) {
  Cmos3 c;
  Netlist pattern = c.netlist();
  Netlist host = c.netlist();
  NetId a = host.add_net("a"), y = host.add_net("y"), g = host.add_net("g");
  host.add_device(c.nmos, {y, a, g});
  EXPECT_THROW(SubgraphMatcher(pattern, host), Error);
}

TEST(Matcher, DisconnectedPatternThrows) {
  Cmos3 c;
  Netlist pattern = c.netlist();
  NetId a = pattern.add_net("a"), y = pattern.add_net("y"),
        g = pattern.add_net("g");
  NetId p = pattern.add_net("p"), q = pattern.add_net("q"),
        r = pattern.add_net("r");
  pattern.add_device(c.nmos, {y, a, g});
  pattern.add_device(c.nmos, {q, p, r});  // island
  for (NetId port : {a, y, g, p, q, r}) pattern.mark_port(port);
  Netlist host = c.netlist();
  NetId ha = host.add_net("a"), hy = host.add_net("y"), hg = host.add_net("g");
  host.add_device(c.nmos, {hy, ha, hg});
  EXPECT_THROW(SubgraphMatcher(pattern, host), Error);
}

TEST(Matcher, IncompatibleCatalogsThrow) {
  auto cat_a = std::make_shared<DeviceCatalog>();
  cat_a->add_type("nmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}});
  auto cat_b = std::make_shared<DeviceCatalog>();
  // Same name, different pin structure: all pins interchangeable.
  cat_b->add_type("nmos", {{"d", "t"}, {"g", "t"}, {"s", "t"}});

  Netlist pattern(cat_a);
  NetId a = pattern.add_net("a"), y = pattern.add_net("y"),
        g = pattern.add_net("g");
  pattern.add_device(cat_a->require("nmos"), {y, a, g});
  for (NetId port : {a, y, g}) pattern.mark_port(port);

  Netlist host(cat_b);
  NetId ha = host.add_net("a"), hy = host.add_net("y"), hg = host.add_net("g");
  host.add_device(cat_b->require("nmos"), {hy, ha, hg});
  EXPECT_THROW(SubgraphMatcher(pattern, host), Error);
}

TEST(Matcher, MissingHostGlobalYieldsNoMatches) {
  Cmos3 c;
  Netlist pattern = c.inv_pattern(/*global_rails=*/true);
  Netlist host = c.netlist();
  // Host has the structure but no global rails at all.
  NetId vdd = host.add_net("power"), gnd = host.add_net("ground");
  c.inv(host, host.add_net("a"), host.add_net("y"), vdd, gnd);
  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 0u);
}

TEST(Matcher, FourPinCellsMatchThroughBulk) {
  // The 4-pin cell library: bulk pins tie to the rails, and matching still
  // works (bulk edges participate in labeling like any other pin class).
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");

  Design& d = lib.design();
  ModuleId nand2 = lib.module("nand2");
  ModuleId top = d.add_module("top", {"a", "b", "c", "y"});
  Module& m = d.module(top);
  NetId mid = m.add_net("mid");
  m.add_instance(nand2, {*m.find_net("a"), *m.find_net("b"), mid}, "g0");
  m.add_instance(nand2, {mid, *m.find_net("c"), *m.find_net("y")}, "g1");
  Netlist host = d.flatten("top");

  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 2u);
}

TEST(Matcher, XorInsideFullAdder) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("xor2");
  Netlist host = lib.pattern("fulladder");
  SubgraphMatcher matcher(pattern, host);
  // The full adder composes exactly two xor2 cells.
  EXPECT_EQ(matcher.find_all().count(), 2u);
}

TEST(Matcher, SelfMatchIsIdentityModuloSymmetry) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("aoi21");
  Netlist host = lib.pattern("aoi21");
  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  // All devices covered exactly once.
  std::set<std::uint32_t> devs;
  for (DeviceId d : report.instances[0].device_image) devs.insert(d.value);
  EXPECT_EQ(devs.size(), host.device_count());
}

}  // namespace
}  // namespace subg
