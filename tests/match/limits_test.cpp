// Resource-limit and failure-injection behaviour of the matcher: budget
// exhaustion must degrade to "no match" without crashing or corrupting
// later searches.
#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

TEST(Limits, ZeroGuessDepthRejectsSymmetricPatterns) {
  // The parallel pair needs one guess; with the guess budget at zero the
  // candidate is rejected cleanly.
  Cmos3 c;
  Netlist pattern = c.netlist("pair");
  NetId n1 = pattern.add_net("n1"), n2 = pattern.add_net("n2"),
        g = pattern.add_net("g");
  pattern.add_device(c.nmos, {n1, g, n2});
  pattern.add_device(c.nmos, {n1, g, n2});
  for (NetId p : {n1, n2, g}) pattern.mark_port(p);

  Netlist host = c.netlist();
  NetId h1 = host.add_net("h1"), h2 = host.add_net("h2"), hg = host.add_net("hg");
  host.add_device(c.nmos, {h1, hg, h2});
  host.add_device(c.nmos, {h1, hg, h2});

  MatchOptions opts;
  opts.max_guess_depth = 0;
  SubgraphMatcher matcher(pattern, host, opts);
  EXPECT_EQ(matcher.find_all().count(), 0u);

  // Default budget finds it.
  SubgraphMatcher ok(pattern, host);
  EXPECT_EQ(ok.find_all().count(), 1u);
}

TEST(Limits, TinyPassBudgetRejectsCleanly) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  gen::Generated host = gen::ripple_carry_adder(2);
  MatchOptions opts;
  opts.max_phase2_passes_per_candidate = 1;
  SubgraphMatcher matcher(pattern, host.netlist, opts);
  EXPECT_EQ(matcher.find_all().count(), 0u);
}

TEST(Limits, PhaseOneRoundCapRespected) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  gen::Generated host = gen::ripple_carry_adder(4);
  MatchOptions opts;
  opts.phase1.max_rounds = 1;
  SubgraphMatcher matcher(pattern, host.netlist, opts);
  MatchReport r = matcher.find_all();
  // One loop iteration = a net round + a device round.
  EXPECT_LE(r.phase1.rounds, 2u);
  // A weaker CV, but Phase II still verifies correctly.
  EXPECT_EQ(r.count(), 4u);
}

TEST(Limits, MatcherReusableAfterBudgetFailure) {
  // Same matcher options object used for a failing then a succeeding run.
  cells::CellLibrary lib;
  gen::Generated host = gen::ripple_carry_adder(2);
  Netlist pattern = lib.pattern("fulladder");
  MatchOptions tight;
  tight.max_phase2_passes_per_candidate = 1;
  SubgraphMatcher bad(pattern, host.netlist, tight);
  EXPECT_EQ(bad.find_all().count(), 0u);
  SubgraphMatcher good(pattern, host.netlist);
  EXPECT_EQ(good.find_all().count(), 2u);
}

TEST(Limits, FindAllIsRepeatableOnOneMatcher) {
  cells::CellLibrary lib;
  gen::Generated host = gen::ripple_carry_adder(3);
  Netlist pattern = lib.pattern("xor2");
  SubgraphMatcher matcher(pattern, host.netlist);
  MatchReport a = matcher.find_all();
  MatchReport b = matcher.find_all();
  EXPECT_EQ(a.count(), b.count());
  for (std::size_t i = 0; i < a.count(); ++i) {
    EXPECT_EQ(a.instances[i].device_image, b.instances[i].device_image);
  }
}

}  // namespace
}  // namespace subg
