// Resource-limit and failure-injection behaviour of the matcher: budget
// exhaustion must degrade to "no match" without crashing or corrupting
// later searches, and every cut-short sweep must say so in its RunStatus.
#include <gtest/gtest.h>

#include <chrono>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

/// K parallel transistors between the same nets: maximally symmetric, so
/// exhaustive Phase II has a factorial guess space — the adversarial input
/// for deadline tests.
Netlist parallel_bank(const Cmos3& c, std::size_t devices,
                      const char* name, bool ports) {
  Netlist net = c.netlist(name);
  NetId n1 = net.add_net("n1"), n2 = net.add_net("n2"), g = net.add_net("g");
  for (std::size_t i = 0; i < devices; ++i) net.add_device(c.nmos, {n1, g, n2});
  if (ports) {
    for (NetId p : {n1, n2, g}) net.mark_port(p);
  }
  return net;
}

TEST(Limits, ZeroGuessDepthRejectsSymmetricPatterns) {
  // The parallel pair needs one guess; with the guess budget at zero the
  // candidate is rejected cleanly.
  Cmos3 c;
  Netlist pattern = c.netlist("pair");
  NetId n1 = pattern.add_net("n1"), n2 = pattern.add_net("n2"),
        g = pattern.add_net("g");
  pattern.add_device(c.nmos, {n1, g, n2});
  pattern.add_device(c.nmos, {n1, g, n2});
  for (NetId p : {n1, n2, g}) pattern.mark_port(p);

  Netlist host = c.netlist();
  NetId h1 = host.add_net("h1"), h2 = host.add_net("h2"), hg = host.add_net("hg");
  host.add_device(c.nmos, {h1, hg, h2});
  host.add_device(c.nmos, {h1, hg, h2});

  MatchOptions opts;
  opts.max_guess_depth = 0;
  SubgraphMatcher matcher(pattern, host, opts);
  EXPECT_EQ(matcher.find_all().count(), 0u);

  // Default budget finds it.
  SubgraphMatcher ok(pattern, host);
  EXPECT_EQ(ok.find_all().count(), 1u);
}

TEST(Limits, TinyPassBudgetRejectsCleanly) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  gen::Generated host = gen::ripple_carry_adder(2);
  MatchOptions opts;
  opts.max_phase2_passes_per_candidate = 1;
  SubgraphMatcher matcher(pattern, host.netlist, opts);
  EXPECT_EQ(matcher.find_all().count(), 0u);
}

TEST(Limits, PhaseOneRoundCapRespected) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  gen::Generated host = gen::ripple_carry_adder(4);
  MatchOptions opts;
  opts.phase1.max_rounds = 1;
  SubgraphMatcher matcher(pattern, host.netlist, opts);
  MatchReport r = matcher.find_all();
  // One loop iteration = a net round + a device round.
  EXPECT_LE(r.phase1.rounds, 2u);
  // A weaker CV, but Phase II still verifies correctly.
  EXPECT_EQ(r.count(), 4u);
}

TEST(Limits, MatcherReusableAfterBudgetFailure) {
  // Same matcher options object used for a failing then a succeeding run.
  cells::CellLibrary lib;
  gen::Generated host = gen::ripple_carry_adder(2);
  Netlist pattern = lib.pattern("fulladder");
  MatchOptions tight;
  tight.max_phase2_passes_per_candidate = 1;
  SubgraphMatcher bad(pattern, host.netlist, tight);
  EXPECT_EQ(bad.find_all().count(), 0u);
  SubgraphMatcher good(pattern, host.netlist);
  EXPECT_EQ(good.find_all().count(), 2u);
}

TEST(Limits, TruncationIsReportedNotSilent) {
  // The zero-guess-depth rejection from above must be labeled: a capped
  // sweep is kTruncated with abandoned guesses on the books.
  Cmos3 c;
  Netlist pattern = parallel_bank(c, 2, "pair", true);
  Netlist host = parallel_bank(c, 2, "host", false);

  MatchOptions opts;
  opts.max_guess_depth = 0;
  SubgraphMatcher matcher(pattern, host, opts);
  MatchReport r = matcher.find_all();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.status.outcome, RunOutcome::kTruncated);
  EXPECT_FALSE(r.status.reason.empty());
  EXPECT_GT(r.status.guesses_abandoned, 0u);

  // An ungoverned run on the same inputs is complete.
  SubgraphMatcher ok(pattern, host);
  MatchReport full = ok.find_all();
  EXPECT_EQ(full.status.outcome, RunOutcome::kComplete);
  EXPECT_TRUE(full.status.reason.empty());
}

TEST(Limits, DeadlineExpiryReturnsPromptlyWithOutcome) {
  // Exhaustive enumeration over a maximally symmetric bank explores a
  // factorial branch space — unbounded, it would run for hours. With a
  // 100 ms deadline it must come back within a small multiple of that and
  // say the sweep was cut short.
  Cmos3 c;
  Netlist pattern = parallel_bank(c, 6, "bank6", true);
  Netlist host = parallel_bank(c, 40, "host", false);

  MatchOptions opts;
  opts.exhaustive = true;
  const auto start = std::chrono::steady_clock::now();
  opts.budget = Budget::after(0.1);
  SubgraphMatcher matcher(pattern, host, opts);
  MatchReport r = matcher.find_all();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_EQ(r.status.outcome, RunOutcome::kDeadlineExceeded);
  EXPECT_FALSE(r.status.reason.empty());
  // ~2x the deadline, with scheduler slack so the bound is not flaky.
  EXPECT_LT(elapsed, 0.5);
  // Whatever was reported before the cutoff is individually verified.
  for (const SubcircuitInstance& inst : r.instances) {
    EXPECT_EQ(inst.device_image.size(), pattern.device_count());
  }
}

TEST(Limits, PreCancelledTokenStopsBeforeSearching) {
  Cmos3 c;
  Netlist pattern = parallel_bank(c, 6, "bank6", true);
  Netlist host = parallel_bank(c, 40, "host", false);

  CancelToken token;
  token.request();
  MatchOptions opts;
  opts.exhaustive = true;
  opts.budget.set_cancel_token(&token);
  SubgraphMatcher matcher(pattern, host, opts);
  MatchReport r = matcher.find_all();
  EXPECT_EQ(r.status.outcome, RunOutcome::kCancelled);
  EXPECT_EQ(r.count(), 0u);

  // Resetting the token restores normal behaviour for the next run with
  // the same options — the budget holds no stale state.
  token.reset();
  Netlist small_host = parallel_bank(c, 6, "host6", false);
  SubgraphMatcher again(pattern, small_host, opts);
  MatchReport ok = again.find_all();
  EXPECT_EQ(ok.status.outcome, RunOutcome::kComplete);
  EXPECT_EQ(ok.count(), 1u);
}

TEST(Limits, DeadlineGovernsExtractSweep) {
  // An already-expired budget: the sweep gives up before the first cell
  // and reports every cell as skipped rather than returning a silently
  // empty extraction.
  cells::CellLibrary lib;
  gen::Generated host = gen::ripple_carry_adder(2);
  std::vector<extract::LibraryCell> cells = {
      {"xor2", lib.pattern("xor2")},
      {"nand2", lib.pattern("nand2")},
  };
  extract::ExtractOptions opts;
  opts.match.budget.set_deadline(Budget::Clock::now());
  extract::ExtractResult result =
      extract::extract_gates(host.netlist, cells, opts);
  EXPECT_EQ(result.report.status.outcome, RunOutcome::kDeadlineExceeded);
  EXPECT_EQ(result.report.cells_skipped, 2u);
  EXPECT_EQ(result.report.devices_before, result.report.devices_after);
}

TEST(Limits, FindAllIsRepeatableOnOneMatcher) {
  cells::CellLibrary lib;
  gen::Generated host = gen::ripple_carry_adder(3);
  Netlist pattern = lib.pattern("xor2");
  SubgraphMatcher matcher(pattern, host.netlist);
  MatchReport a = matcher.find_all();
  MatchReport b = matcher.find_all();
  EXPECT_EQ(a.count(), b.count());
  for (std::size_t i = 0; i < a.count(); ++i) {
    EXPECT_EQ(a.instances[i].device_image, b.instances[i].device_image);
  }
}

}  // namespace
}  // namespace subg
