// E3 — ambiguity and backtracking (paper Fig 5).
//
// A pattern of two parallel transistors (same gate, same source/drain
// nets) is symmetric: refinement can never split {A, B}, so Phase II must
// guess. Either guess is correct — a match is found with no backtracking.
#include <gtest/gtest.h>

#include "match/matcher.hpp"
#include "match/verify.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

/// Pattern: two parallel nmos between n1 and n2, common gate g.
Netlist parallel_pair_pattern(const Cmos3& c) {
  Netlist nl = c.netlist("pair");
  NetId n1 = nl.add_net("n1"), n2 = nl.add_net("n2"), g = nl.add_net("g");
  nl.add_device(c.nmos, {n1, g, n2}, "A");
  nl.add_device(c.nmos, {n1, g, n2}, "B");
  nl.mark_port(n1);
  nl.mark_port(n2);
  nl.mark_port(g);
  return nl;
}

TEST(Symmetry, ParallelPairNeedsAGuessButNoBacktracking) {
  Cmos3 c;
  Netlist pattern = parallel_pair_pattern(c);

  Netlist host = c.netlist("main");
  NetId h1 = host.add_net("h1"), h2 = host.add_net("h2"), hg = host.add_net("hg");
  host.add_device(c.nmos, {h1, hg, h2}, "A'");
  host.add_device(c.nmos, {h1, hg, h2}, "B'");
  // Unrelated device elsewhere so the host is not literally the pattern.
  NetId q1 = host.add_net("q1"), q2 = host.add_net("q2"), qg = host.add_net("qg");
  host.add_device(c.pmos, {q1, qg, q2}, "other");

  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  EXPECT_GE(report.phase2.guesses, 1u);
  EXPECT_EQ(report.phase2.backtracks, 0u);
}

TEST(Symmetry, AutomorphicInstancesDeduplicated) {
  // Both parallel transistors are in the candidate vector; each candidate
  // verifies to the same device set, which dedup collapses to one instance.
  Cmos3 c;
  Netlist pattern = parallel_pair_pattern(c);

  Netlist host = c.netlist();
  NetId h1 = host.add_net("h1"), h2 = host.add_net("h2"), hg = host.add_net("hg");
  host.add_device(c.nmos, {h1, hg, h2});
  host.add_device(c.nmos, {h1, hg, h2});

  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  EXPECT_EQ(report.count(), 1u);
  EXPECT_EQ(report.phase2.candidates_matched, 2u);
}

/// Ring of `n` identical pass transistors sharing one gate net; ring nets
/// named prefix+i.
void add_ring(const Cmos3& c, Netlist& nl, int n, const std::string& prefix) {
  NetId gate = nl.add_net(prefix + "gate");
  std::vector<NetId> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(nl.add_net(prefix + std::to_string(i)));
  for (int i = 0; i < n; ++i) {
    nl.add_device(c.nmos, {nodes[i], gate, nodes[(i + 1) % n]});
  }
}

TEST(Symmetry, BacktrackingRecoversFromWrongGuess) {
  // Host contains a "fat" ring — a 6-ring with one extra transistor hanging
  // off ring net f1 — and a clean 6-ring. Refinement inside the fat ring
  // completes after a symmetric guess (the extra device is invisible to
  // safe-only labeling), but the hypothesis is wrong: f1 has degree 3 where
  // the pattern's internal ring net needs exactly 2. With the signature
  // prefilter disabled (the pre-fast-path code path), the bad mappings
  // complete and die in final explicit verification, after backtracking
  // through both mirror guesses; the clean ring is the only instance.
  Cmos3 c;
  Netlist pattern = c.netlist("ring_p");
  add_ring(c, pattern, 6, "r");
  pattern.mark_port(*pattern.find_net("rgate"));

  Netlist host = c.netlist("main");
  add_ring(c, host, 6, "f");
  // The poison: one extra transistor with a source/drain on f1.
  NetId qg = host.add_net("qg"), qd = host.add_net("qd");
  host.add_device(c.nmos, {*host.find_net("f1"), qg, qd});
  add_ring(c, host, 6, "c");

  MatchOptions unfiltered;
  unfiltered.phase2_filter = Phase2Filter::kOff;
  SubgraphMatcher matcher(pattern, host, unfiltered);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  // The instance lives in the clean ring.
  for (NetId n : report.instances.front().net_image) {
    EXPECT_EQ(host.net_name(n)[0], 'c') << host.net_name(n);
  }
  // Fat-ring candidates really did complete-and-fail: final verification
  // rejections and backtracking both occurred.
  EXPECT_GE(report.phase2.verify_failures, 1u);
  EXPECT_GE(report.phase2.backtracks, 1u);
  EXPECT_GT(report.phase2.guesses, report.phase2.backtracks);
}

TEST(Symmetry, SignatureFilterPrunesWrongGuessesEarly) {
  // Same poisoned-host workload as BacktrackingRecoversFromWrongGuess, with
  // the prefilter on: degree-3 f1 can never image a degree-2 internal ring
  // net, so fat-ring postulates are refuted up front instead of completing
  // and dying in verification. Same single instance, strictly less
  // relabeling work, and the fast-path counters must have fired. The filter
  // is pinned to kOn: under the kPaths default the path-label refuter
  // rejects fat-ring candidates before any domain is ever built, and this
  // test exists to prove the signature prefilter alone does the job.
  Cmos3 c;
  Netlist pattern = c.netlist("ring_p");
  add_ring(c, pattern, 6, "r");
  pattern.mark_port(*pattern.find_net("rgate"));

  Netlist host = c.netlist("main");
  add_ring(c, host, 6, "f");
  NetId qg = host.add_net("qg"), qd = host.add_net("qd");
  host.add_device(c.nmos, {*host.find_net("f1"), qg, qd});
  add_ring(c, host, 6, "c");

  MatchOptions unfiltered;
  unfiltered.phase2_filter = Phase2Filter::kOff;
  MatchReport baseline =
      SubgraphMatcher(pattern, host, unfiltered).find_all();

  MatchOptions filtered;
  filtered.phase2_filter = Phase2Filter::kOn;
  SubgraphMatcher matcher(pattern, host, filtered);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  ASSERT_EQ(baseline.count(), 1u);
  EXPECT_EQ(report.instances.front().device_image,
            baseline.instances.front().device_image);
  EXPECT_EQ(report.instances.front().net_image,
            baseline.instances.front().net_image);
  EXPECT_GE(report.phase2.domain_prunes, 1u);
  EXPECT_LT(report.phase2.expansion_ops, baseline.phase2.expansion_ops);
  // A refuted postulate never completes, so it cannot reach verification.
  EXPECT_LE(report.phase2.verify_failures, baseline.phase2.verify_failures);
}

TEST(Symmetry, RailOnlyConnectedPatternUsesGuessFallback) {
  // A pattern whose two halves connect ONLY through the global rails:
  // refinement cannot cross a rail (its fanout is never expanded), so after
  // the first half matches, Phase II must seed the second half by guessing
  // a device on the rail — the dedicated fallback path.
  Cmos3 c;
  Netlist pattern = c.netlist("two_inv");
  NetId vdd = pattern.add_net("vdd"), gnd = pattern.add_net("gnd");
  pattern.mark_global(vdd);
  pattern.mark_global(gnd);
  NetId a1 = pattern.add_net("a1"), y1 = pattern.add_net("y1");
  NetId a2 = pattern.add_net("a2"), y2 = pattern.add_net("y2");
  c.inv(pattern, a1, y1, vdd, gnd);
  c.inv(pattern, a2, y2, vdd, gnd);
  for (NetId p : {a1, y1, a2, y2}) pattern.mark_port(p);

  Netlist host = c.netlist("main");
  NetId hv = host.add_net("vdd"), hg = host.add_net("gnd");
  host.mark_global(hv);
  host.mark_global(hg);
  for (int i = 0; i < 3; ++i) {
    c.inv(host, host.add_net("ia" + std::to_string(i)),
          host.add_net("iy" + std::to_string(i)), hv, hg);
  }

  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  // Any unordered pair of distinct inverters is an instance; at least the
  // per-key-image count must come out, each passing verification.
  EXPECT_GE(report.count(), 1u);
  EXPECT_GE(report.phase2.guesses, 1u);
  for (const auto& inst : report.instances) {
    EXPECT_TRUE(verify_instance(pattern, host, inst));
  }

  // Exhaustive semantics enumerates all C(3,2) = 3 pairs.
  MatchOptions ex;
  ex.exhaustive = true;
  SubgraphMatcher exm(pattern, host, ex);
  EXPECT_EQ(exm.find_all().count(), 3u);
}

TEST(Symmetry, FullySymmetricRingMatches) {
  // A ring of identical pass transistors: every vertex is equivalent, so
  // matching a ring of the same size requires a chain of guesses.
  Cmos3 c;
  constexpr int kRing = 6;
  auto make_ring = [&](std::string name) {
    Netlist nl = c.netlist(name);
    NetId gate = nl.add_net("gate");
    std::vector<NetId> nodes;
    for (int i = 0; i < kRing; ++i) {
      nodes.push_back(nl.add_net("r" + std::to_string(i)));
    }
    for (int i = 0; i < kRing; ++i) {
      nl.add_device(c.nmos, {nodes[i], gate, nodes[(i + 1) % kRing]});
    }
    return nl;
  };
  Netlist pattern = make_ring("ring_p");
  // Every ring net is internal; only the gate is external.
  pattern.mark_port(*pattern.find_net("gate"));
  Netlist host = make_ring("ring_h");

  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  EXPECT_GE(report.phase2.guesses, 1u);
}

}  // namespace
}  // namespace subg
