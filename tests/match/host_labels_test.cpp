#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/host_labels.hpp"
#include "match/matcher.hpp"
#include "util/check.hpp"

namespace subg {
namespace {

TEST(HostLabels, CachedAndUncachedResultsIdentical) {
  gen::Generated host = gen::ripple_carry_adder(8);
  CircuitGraph gg(host.netlist);
  HostLabelCache cache(gg);
  cells::CellLibrary lib;

  for (const char* cell : {"fulladder", "xor2", "nand2", "inv"}) {
    Netlist pattern = lib.pattern(cell);
    CircuitGraph sg(pattern);
    Phase1Options with, without;
    with.host_cache = &cache;
    Phase1Result a = run_phase1(sg, gg, with);
    Phase1Result b = run_phase1(sg, gg, without);
    EXPECT_EQ(a.feasible, b.feasible) << cell;
    EXPECT_EQ(a.key, b.key) << cell;
    EXPECT_EQ(a.candidates, b.candidates) << cell;
    EXPECT_EQ(a.rounds, b.rounds) << cell;
  }
}

TEST(HostLabels, SequencesAreMemoized) {
  gen::Generated host = gen::ripple_carry_adder(4);
  CircuitGraph gg(host.netlist);
  HostLabelCache cache(gg);
  cells::CellLibrary lib;

  Netlist p1 = lib.pattern("fulladder");
  CircuitGraph s1(p1);
  Phase1Options opts;
  opts.host_cache = &cache;
  (void)run_phase1(s1, gg, opts);
  const std::size_t after_first = cache.cached_rounds();
  EXPECT_GT(after_first, 0u);

  // A second pattern with the same rails and no more rounds reuses
  // everything.
  Netlist p2 = lib.pattern("xor2");
  CircuitGraph s2(p2);
  (void)run_phase1(s2, gg, opts);
  EXPECT_EQ(cache.cached_rounds(), after_first);
}

TEST(HostLabels, DistinctRailSetsGetDistinctSequences) {
  gen::Generated host = gen::ripple_carry_adder(4);
  CircuitGraph gg(host.netlist);
  HostLabelCache cache(gg);

  // Same structural pattern, one with rails global, one with rails as
  // ports: different cache keys.
  auto cat = host.netlist.catalog_ptr();
  auto make_pattern = [&](bool global_rails) {
    Netlist nl(cat, global_rails ? "gp" : "pp");
    NetId a = nl.add_net("a"), y = nl.add_net("y");
    NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd");
    nl.add_device(cat->require("pmos"), {y, a, vdd, vdd});
    nl.add_device(cat->require("nmos"), {y, a, gnd, gnd});
    nl.mark_port(a);
    nl.mark_port(y);
    if (global_rails) {
      nl.mark_global(vdd);
      nl.mark_global(gnd);
    } else {
      nl.mark_port(vdd);
      nl.mark_port(gnd);
    }
    return nl;
  };

  Phase1Options opts;
  opts.host_cache = &cache;
  Netlist g1 = make_pattern(true);
  CircuitGraph s1(g1);
  (void)run_phase1(s1, gg, opts);
  const std::size_t after_first = cache.cached_rounds();

  Netlist g2 = make_pattern(false);
  CircuitGraph s2(g2);
  (void)run_phase1(s2, gg, opts);
  EXPECT_GT(cache.cached_rounds(), after_first);
}

TEST(HostLabels, WrongHostRejected) {
  gen::Generated a = gen::ripple_carry_adder(2);
  gen::Generated b = gen::ripple_carry_adder(2);
  CircuitGraph ga(a.netlist), gb(b.netlist);
  HostLabelCache cache(ga);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("inv");
  CircuitGraph sg(pattern);
  Phase1Options opts;
  opts.host_cache = &cache;
  EXPECT_THROW(static_cast<void>(run_phase1(sg, gb, opts)), Error);
}

TEST(HostLabels, NormalizeSortsAndDeduplicates) {
  HostLabelCache::RailKey key = {{7, 100}, {3, 50}, {7, 100}, {3, 50}, {1, 9}};
  HostLabelCache::normalize(key);
  const HostLabelCache::RailKey expected = {{1, 9}, {3, 50}, {7, 100}};
  EXPECT_EQ(key, expected);

  // Conflicting labels for one vertex are both kept (sorted), so the
  // canonical form is still deterministic.
  HostLabelCache::RailKey conflict = {{4, 20}, {4, 10}, {4, 20}};
  HostLabelCache::normalize(conflict);
  const HostLabelCache::RailKey expected2 = {{4, 10}, {4, 20}};
  EXPECT_EQ(conflict, expected2);
}

TEST(HostLabels, AliasedRailEntriesHitTheSameCacheEntry) {
  // Regression: a rail key with duplicate (vertex, label) entries — two
  // pattern globals aliasing one host net — must canonicalize to the clean
  // key: same cache entry (no double memoization) and identical labels
  // (the rail override applied once, not twice).
  gen::Generated host = gen::ripple_carry_adder(4);
  CircuitGraph gg(host.netlist);
  HostLabelCache cache(gg);

  // Use the first two net vertices as stand-in rails.
  constexpr Vertex kNone = 0xFFFFFFFFu;
  Vertex rail_a = kNone, rail_b = kNone;
  for (Vertex v = 0; v < gg.vertex_count(); ++v) {
    if (!gg.is_net(v)) continue;
    if (rail_a == kNone) {
      rail_a = v;
    } else {
      rail_b = v;
      break;
    }
  }
  ASSERT_NE(rail_b, kNone);

  const HostLabelCache::RailKey clean = {{rail_a, 111}, {rail_b, 222}};
  HostLabelCache::RailKey aliased = {{rail_b, 222}, {rail_a, 111},
                                     {rail_a, 111}, {rail_b, 222}};

  const std::vector<Label>& from_clean = cache.labels(clean, 3);
  const std::size_t rounds_after_clean = cache.cached_rounds();
  const std::vector<Label>& from_aliased = cache.labels(aliased, 3);
  // Same memoized array — the duplicate-laden key did not mint a second
  // sequence.
  EXPECT_EQ(&from_clean, &from_aliased);
  EXPECT_EQ(cache.cached_rounds(), rounds_after_clean);
}

TEST(HostLabels, MatcherEndToEndWithSharedCache) {
  gen::Generated host = gen::logic_soup(300, 9);
  CircuitGraph gg(host.netlist);
  cells::CellLibrary lib;

  // Shared graph + cache across a library sweep via MatchOptions.
  HostLabelCache cache(gg);
  for (const char* cell : {"nand2", "nor2", "xor2", "aoi21"}) {
    Netlist pattern = lib.pattern(cell);
    MatchOptions plain;
    MatchOptions cached;
    cached.phase1.host_cache = &cache;
    SubgraphMatcher m1(pattern, host.netlist, plain);
    // Shared-graph constructor: the cache must be keyed to this graph.
    SubgraphMatcher m2(pattern, gg, cached);
    EXPECT_EQ(m1.find_all().count(), m2.find_all().count()) << cell;
  }
}

}  // namespace
}  // namespace subg
