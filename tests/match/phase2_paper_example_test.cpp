// E2 — the paper's worked example, Phase II (Table 1, §IV).
//
// Verifying the NAND2 pattern against the main circuit must converge by
// pure partition refinement — labels spread out from the key/candidate
// pair, singleton safe partitions match pass by pass, and no guessing or
// backtracking is needed (the paper reaches a full match in 7 passes).
#include <gtest/gtest.h>

#include <set>

#include "match/matcher.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

struct Fixture {
  Cmos3 c;
  Netlist pattern = c.nand2_pattern(/*global_rails=*/false);
  Netlist host = c.netlist("main");
  NetId vdd, gnd, in1, in2, out;

  Fixture() {
    vdd = host.add_net("vdd");
    gnd = host.add_net("gnd");
    in1 = host.add_net("in1");
    in2 = host.add_net("in2");
    out = host.add_net("out");
    c.nand2(host, in1, in2, out, vdd, gnd);
    NetId pi = host.add_net("pi");
    c.inv(host, pi, in1, vdd, gnd);
    NetId da = host.add_net("da"), db = host.add_net("db"),
          dg1 = host.add_net("dg1"), dg2 = host.add_net("dg2"),
          mid = host.add_net("decoy_mid");
    host.add_device(c.nmos, {da, dg1, mid});
    host.add_device(c.nmos, {mid, dg2, db});
    c.inv(host, out, host.add_net("out_inv"), vdd, gnd);
  }
};

TEST(Phase2PaperExample, FindsExactlyTheOneInstance) {
  Fixture f;
  SubgraphMatcher matcher(f.pattern, f.host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);

  const SubcircuitInstance& inst = report.instances.front();
  // Net mapping: pattern ports land on the right host nets. Inputs a/b may
  // map to in1/in2 in either order (the NAND is symmetric in its inputs).
  auto image_of = [&](std::string_view name) {
    return inst.net_image[f.pattern.find_net(name)->index()];
  };
  EXPECT_EQ(image_of("y"), f.out);
  EXPECT_EQ(image_of("vdd"), f.vdd);
  EXPECT_EQ(image_of("gnd"), f.gnd);
  std::set<std::uint32_t> ins = {image_of("a").value, image_of("b").value};
  EXPECT_EQ(ins, (std::set<std::uint32_t>{f.in1.value, f.in2.value}));
}

TEST(Phase2PaperExample, ConvergesWithoutGuessing) {
  Fixture f;
  SubgraphMatcher matcher(f.pattern, f.host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  EXPECT_EQ(report.phase2.guesses, 0u);
  EXPECT_EQ(report.phase2.backtracks, 0u);
}

TEST(Phase2PaperExample, DecoyCandidateIsRejected) {
  Fixture f;
  SubgraphMatcher matcher(f.pattern, f.host);
  MatchReport report = matcher.find_all();
  EXPECT_EQ(report.phase1.candidates.size(), 2u);
  EXPECT_EQ(report.phase2.candidates_tried, 2u);
  EXPECT_EQ(report.phase2.candidates_matched, 1u);
}

TEST(Phase2PaperExample, DeviceImagesAreTheNandTransistors) {
  Fixture f;
  SubgraphMatcher matcher(f.pattern, f.host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  const SubcircuitInstance& inst = report.instances.front();
  // The host NAND2 devices are the first four added to the host netlist.
  std::set<std::uint32_t> got;
  for (DeviceId d : inst.device_image) got.insert(d.value);
  EXPECT_EQ(got, (std::set<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Phase2PaperExample, TraceShowsMonotoneMatching) {
  Fixture f;
  Phase2Trace trace;
  MatchOptions opts;
  opts.trace = &trace;
  SubgraphMatcher matcher(f.pattern, f.host, opts);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  ASSERT_FALSE(trace.entries.empty());

  // Per pattern vertex: once matched, matched in every later pass (the
  // verifier never un-matches without backtracking, and there is none
  // here). Track only the successful candidate's passes: matched count of
  // the final pass must equal the pattern vertex count (10: 4 devices + 6
  // nets, no globals here).
  std::size_t last_pass = 0;
  for (const auto& e : trace.entries) last_pass = std::max(last_pass, e.pass);
  std::size_t matched_in_last = 0;
  for (const auto& e : trace.entries) {
    if (!e.host && e.pass == last_pass && e.matched) ++matched_in_last;
  }
  EXPECT_EQ(matched_in_last, 10u);
  // Refinement converged in a handful of passes (the paper needs 7).
  EXPECT_LE(last_pass, 12u);
}

}  // namespace
}  // namespace subg
