// Sharded vs monolithic equivalence — the --shard invariant (DESIGN.md §11).
//
// The contract (SessionOptions::shard_target_devices): sharding partitions
// Phase I's host-side consistency sweeps into per-region lanes with a
// round-0 bulk-skip prefilter, and changes NOTHING else. Reports —
// instances, their order, every Phase I/II statistic, the serialized JSON —
// are byte-identical to the monolithic sweep, in both cores, at every jobs
// value, at every region size (including adversarially tiny ones that
// splinter the host into hundreds of shards), and through ECO patches.
// These tests pin that contract plus the prefilter's soundness: a shard
// skipped for a kind can never own the image of a match.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "graph/shard_plan.hpp"
#include "match/matcher.hpp"
#include "report/document.hpp"
#include "session/delta.hpp"
#include "session/session.hpp"

namespace subg {
namespace {

/// Serialized report with the wall-clock members zeroed: byte equality of
/// this string is the equivalence claim.
std::string report_json(MatchReport report) {
  report.phase1_seconds = 0;
  report.phase2_seconds = 0;
  return report::to_json(report).dump();
}

MatchReport run(const Netlist& pattern, const Netlist& host,
                std::size_t shard_target, std::size_t anchor_fanout,
                CoreMode core, std::size_t jobs) {
  SessionOptions so;
  so.core = core;
  so.shard_target_devices = shard_target;
  so.shard_anchor_fanout = anchor_fanout;
  HostSession session = HostSession::build(host, so);
  MatchOptions opts;
  opts.core = core;
  opts.jobs = jobs;
  return find_in_session(pattern, session, opts);
}

struct Workload {
  const char* cell;
  gen::Generated g;
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  w.push_back({"nand2", gen::soc_grid(12, 6, 8, 2)});
  w.push_back({"nand2", gen::c17()});
  w.push_back({"fulladder", gen::ripple_carry_adder(6)});
  w.push_back({"nand2", gen::logic_soup(120, 5)});
  w.push_back({"dff", gen::register_file(2, 4)});
  w.push_back({"sram6t", gen::sram_array(4, 8)});
  return w;
}

TEST(ShardEquivalence, ShardedReportEqualsMonolithicEverywhere) {
  std::vector<Workload> ws = workloads();
  cells::CellLibrary lib;
  std::size_t instances_total = 0;
  for (const Workload& w : ws) {
    const Netlist& pattern = lib.pattern(w.cell);
    for (const CoreMode core : {CoreMode::kCsr, CoreMode::kLegacy}) {
      const std::string mono = report_json(
          run(pattern, w.g.netlist, 0, 64, core, 1));
      // Region sizes from "whole host in one shard" down to "a shard per
      // handful of devices"; anchor fanouts low enough to anchor ordinary
      // logic nets. Every combination must reproduce the monolithic bytes.
      for (const std::size_t target : {std::size_t{1} << 16, std::size_t{64},
                                       std::size_t{7}}) {
        for (const std::size_t fanout : {std::size_t{64}, std::size_t{5}}) {
          for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
            SCOPED_TRACE(std::string(w.cell) + " core=" +
                         std::string(to_string(core)) + " target=" +
                         std::to_string(target) + " fanout=" +
                         std::to_string(fanout) + " jobs=" +
                         std::to_string(jobs));
            MatchReport r =
                run(pattern, w.g.netlist, target, fanout, core, jobs);
            EXPECT_GT(r.phase1.shards_total, 0u);
            instances_total += r.instances.size();
            EXPECT_EQ(report_json(std::move(r)), mono);
          }
        }
      }
    }
  }
  // Guard against vacuous equivalence: the workloads must actually match.
  EXPECT_GT(instances_total, 100u);
}

TEST(ShardEquivalence, MonolithicRunsReportZeroShardCounters) {
  cells::CellLibrary lib;
  gen::Generated g = gen::soc_grid(4, 4, 4, 1);
  MatchReport r = run(lib.pattern("nand2"), g.netlist, 0, 64,
                      CoreMode::kCsr, 1);
  EXPECT_EQ(r.phase1.shards_total, 0u);
  EXPECT_EQ(r.phase1.shards_skipped, 0u);
  EXPECT_EQ(r.phase1.shards_prefilter_rejects, 0u);
}

TEST(ShardEquivalence, ShardCountersAreDeterministicAcrossJobsAndCores) {
  cells::CellLibrary lib;
  gen::Generated g = gen::soc_grid(12, 6, 8, 2);
  const Netlist& pattern = lib.pattern("nand2");
  MatchReport first =
      run(pattern, g.netlist, 64, 5, CoreMode::kCsr, 1);
  EXPECT_GT(first.phase1.shards_total, 0u);
  // The pad-ring shards share no round-0 label with a CMOS pattern: the
  // prefilter must fire on this workload, not just stay sound.
  EXPECT_GT(first.phase1.shards_prefilter_rejects, 0u);
  for (const CoreMode core : {CoreMode::kCsr, CoreMode::kLegacy}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
      MatchReport r = run(pattern, g.netlist, 64, 5, core, jobs);
      EXPECT_EQ(r.phase1.shards_total, first.phase1.shards_total);
      EXPECT_EQ(r.phase1.shards_skipped, first.phase1.shards_skipped);
      EXPECT_EQ(r.phase1.shards_prefilter_rejects,
                first.phase1.shards_prefilter_rejects);
    }
  }
}

TEST(ShardEquivalence, SkippedShardsNeverOwnAMatchImage) {
  // Prefilter soundness, checked from the instance side: rebuild the plan
  // the session used, recompute each shard's round-0 rejection against the
  // pattern labels, and require every match image to avoid the shards that
  // rejected its kind. (Byte-identity above implies this; checking it
  // directly localizes a soundness bug to the skip rule instead of
  // surfacing as a diff between two 10k-line reports.)
  cells::CellLibrary lib;
  gen::Generated g = gen::soc_grid(12, 6, 8, 2);
  const Netlist& pattern = lib.pattern("nand2");

  SessionOptions so;
  so.shard_target_devices = 48;
  so.shard_anchor_fanout = 5;
  HostSession session = HostSession::build(g.netlist, so);
  MatchOptions opts;
  MatchReport r = find_in_session(pattern, session, opts);
  ASSERT_GT(r.instances.size(), 0u);
  ASSERT_NE(session.shards(), nullptr);
  const ShardPlan& plan = *session.shards();
  const CircuitGraph& host = session.graph();

  CircuitGraph pattern_graph(pattern);
  const Round0PatternLabels labels = pattern_round0_labels(pattern_graph);

  std::size_t rejecting_shards = 0;
  for (const ShardPlan::Shard& s : plan.shards()) {
    const bool dead_devices = s.rejects(labels.devices, true);
    const bool dead_nets = s.rejects(labels.nets, false);
    if (!dead_devices && !dead_nets) continue;
    ++rejecting_shards;
    std::set<Vertex> owned_devices(s.devices.begin(), s.devices.end());
    std::set<Vertex> owned_nets(s.nets.begin(), s.nets.end());
    for (const SubcircuitInstance& inst : r.instances) {
      if (dead_devices) {
        for (DeviceId d : inst.device_image) {
          EXPECT_FALSE(owned_devices.contains(host.vertex_of(d)))
              << "device " << g.netlist.device_name(d)
              << " matched inside a shard whose device kind was rejected";
        }
      }
      if (dead_nets) {
        for (NetId n : inst.net_image) {
          EXPECT_FALSE(owned_nets.contains(host.vertex_of(n)))
              << "net " << g.netlist.net_name(n)
              << " matched inside a shard whose net kind was rejected";
        }
      }
    }
  }
  // The pad shards must have rejected — otherwise this test proved nothing.
  EXPECT_GT(rejecting_shards, 0u);
}

TEST(ShardEquivalence, PatchedShardedSessionEqualsColdBuild) {
  // ECO through a sharded session: the plan is rebuilt cold on every patch,
  // so a patched session must stay byte-identical to a cold build of the
  // edited netlist — sharded AND monolithic views alike.
  cells::CellLibrary lib;
  gen::Generated g = gen::soc_grid(12, 6, 8, 2);
  const Netlist& pattern = lib.pattern("nand2");

  SessionOptions so;
  so.shard_target_devices = 64;
  so.shard_anchor_fanout = 5;
  MatchOptions opts;
  opts.jobs = 8;

  HostSession session = HostSession::build(g.netlist, so);
  (void)find_in_session(pattern, session, opts);  // warm the cache pre-patch

  NetlistDelta delta;
  {
    // Drop one pad resistor and add an inverter onto a tile chain: the
    // patch touches both districts, so the rebuilt plan differs from the
    // pre-patch plan in more than counts.
    DeltaOp remove;
    remove.kind = DeltaOpKind::kRemoveDevice;
    remove.name = g.netlist.device_name(DeviceId(0));
    remove.line = 1;
    const std::uint32_t fet_pins = static_cast<std::uint32_t>(
        g.netlist.catalog().type(g.netlist.catalog().require("nmos"))
            .pin_count());
    DeltaOp add_p;
    add_p.kind = DeltaOpKind::kAddDevice;
    add_p.type = "pmos";
    add_p.name = "eco_mp";
    add_p.nets = {"eco_w", "t0_c0"};
    while (add_p.nets.size() < fet_pins) add_p.nets.emplace_back("vdd");
    add_p.line = 2;
    DeltaOp add_n;
    add_n.kind = DeltaOpKind::kAddDevice;
    add_n.type = "nmos";
    add_n.name = "eco_mn";
    add_n.nets = {"eco_w", "t0_c0"};
    while (add_n.nets.size() < fet_pins) add_n.nets.emplace_back("gnd");
    add_n.line = 3;
    delta.ops = {remove, add_p, add_n};
  }
  (void)session.apply(delta);
  const MatchReport patched = find_in_session(pattern, session, opts);

  Netlist edited = g.netlist;
  apply_delta(edited, delta);
  HostSession cold = HostSession::build(std::move(edited), so);
  const MatchReport cold_report = find_in_session(pattern, cold, opts);
  EXPECT_EQ(report_json(patched), report_json(cold_report));
  EXPECT_GT(patched.phase1.shards_total, 0u);

  // And the sharded patched session must also equal the MONOLITHIC view of
  // the same edited host (the equivalence has to survive composition).
  HostSession mono = HostSession::build(cold.netlist());
  MatchReport mono_report = find_in_session(pattern, mono, opts);
  MatchReport sharded_copy = patched;
  EXPECT_EQ(report_json(std::move(sharded_copy)),
            report_json(std::move(mono_report)));
}

}  // namespace
}  // namespace subg
