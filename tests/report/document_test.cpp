// Golden-file tests for the schema_version-1 report documents.
//
// Each case runs a real (deterministic) workload, builds the same Document a
// front-end would, normalizes the volatile members (wall-clock values), and
// compares the serialized bytes against a checked-in golden file. Regenerate
// with:
//
//   SUBG_UPDATE_GOLDENS=1 ./document_test
//
// A golden diff is an intentional schema change or a regression — either
// way it should be looked at, not papered over. Schema version 1 is
// additive-only, so goldens may gain members but never lose or retype them.
#include "report/document.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"
#include "gtest/gtest.h"
#include "match/matcher.hpp"
#include "obs/metrics.hpp"
#include "report/report.hpp"
#include "util/budget.hpp"

namespace subg::report {
namespace {

/// Wall-clock members make bytes unstable; zero them everywhere. The rule
/// mirrors the schema: any member named "seconds" or ending in "_seconds"
/// holds a duration (span totals, phase timings, per-cell timings).
void zero_seconds(json::Value& v) {
  if (v.is_object()) {
    for (auto& [key, value] : v.members()) {
      const bool is_duration =
          key == "seconds" ||
          (key.size() > 8 && key.compare(key.size() - 8, 8, "_seconds") == 0);
      if (is_duration) {
        value = 0;
      } else {
        zero_seconds(value);
      }
    }
  } else if (v.is_array()) {
    for (json::Value& element : v.elements()) zero_seconds(element);
  }
}

std::string golden_path(const char* name) {
  return std::string(SUBG_GOLDEN_DIR) + "/" + name;
}

void compare_against_golden(const Document& doc, const char* name) {
  const std::string actual = doc.dump();
  const std::string path = golden_path(name);
  if (std::getenv("SUBG_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with SUBG_UPDATE_GOLDENS=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "document diverged from " << path;
}

TEST(DocumentGolden, FindReportWithMetrics) {
  cells::CellLibrary lib;
  gen::Generated g = gen::c17();
  Netlist pattern = lib.pattern("nand2");

  obs::Metrics metrics;
  MatchOptions options;
  options.metrics = &metrics;
  SubgraphMatcher matcher(pattern, g.netlist, options);
  MatchReport report = matcher.find_all();
  ASSERT_TRUE(report.status.complete());

  Document doc("subgemini", "find");
  doc.set("report", to_json(report));
  doc.set_metrics(metrics.collect());
  zero_seconds(doc.root());
  compare_against_golden(doc, "find_c17_nand2.json");
}

TEST(DocumentGolden, ExtractReport) {
  cells::CellLibrary lib;
  gen::Generated g = gen::c17();
  std::vector<extract::LibraryCell> library;
  library.push_back({"nand2", lib.pattern("nand2")});
  library.push_back({"inv", lib.pattern("inv")});

  extract::ExtractResult result = extract::extract_gates(g.netlist, library);
  ASSERT_TRUE(result.report.status.complete());

  Document doc("subgemini", "extract");
  doc.set("report", to_json(result.report));
  zero_seconds(doc.root());
  compare_against_golden(doc, "extract_c17.json");
}

TEST(DocumentGolden, CompareReport) {
  gen::Generated a = gen::c17();
  gen::Generated b = gen::c17();
  CompareResult result = compare_netlists(a.netlist, b.netlist);
  ASSERT_TRUE(result.isomorphic);

  Document doc("subgemini", "compare");
  doc.set("report", to_json(result));
  zero_seconds(doc.root());
  compare_against_golden(doc, "compare_c17.json");
}

TEST(DocumentGolden, DeadlineExpiredRunKeepsStatusAndPartialMetrics) {
  // A pre-expired deadline interrupts deterministically: Phase I stops at
  // its first budget poll, the sweep skips every candidate, and the
  // document still carries the structured status plus whatever metrics the
  // run recorded before the interruption.
  cells::CellLibrary lib;
  gen::Generated g = gen::c17();
  Netlist pattern = lib.pattern("nand2");

  obs::Metrics metrics;
  MatchOptions options;
  options.metrics = &metrics;
  options.budget = Budget::after(0.0);
  SubgraphMatcher matcher(pattern, g.netlist, options);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.status.outcome, RunOutcome::kDeadlineExceeded);
  ASSERT_TRUE(report.instances.empty());

  Document doc("subgemini", "find");
  doc.set("report", to_json(report));
  doc.set_metrics(metrics.collect());
  zero_seconds(doc.root());
  compare_against_golden(doc, "find_deadline_expired.json");
}

TEST(Document, EnvelopeComesFirstAndInOrder) {
  Document doc("tool", "cmd");
  doc.set("extra", 1);
  const auto& members = doc.root().members();
  ASSERT_GE(members.size(), 4u);
  EXPECT_EQ(members[0].first, "schema_version");
  EXPECT_EQ(members[0].second.as_uint(), kSchemaVersion);
  EXPECT_EQ(members[1].first, "tool");
  EXPECT_EQ(members[2].first, "command");
  EXPECT_EQ(members[3].first, "extra");
}

TEST(Document, EmptySnapshotAttachesNoMetricsMember) {
  Document doc("tool", "cmd");
  doc.set_metrics(obs::Snapshot{});
  EXPECT_EQ(doc.root().find("metrics"), nullptr);
  obs::Metrics m;
  m.add("x");
  doc.set_metrics(m.collect());
  ASSERT_NE(doc.root().find("metrics"), nullptr);
}

TEST(Table, PrintCsvQuotesOnlyWhenNeeded) {
  Table table({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_row({"with,comma", "say \"hi\""});
  table.add_row({"multi\nline", "trailing\r"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",\"say \"\"hi\"\"\"\n"
            "\"multi\nline\",\"trailing\r\"\n");
}

}  // namespace
}  // namespace subg::report
