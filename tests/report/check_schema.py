#!/usr/bin/env python3
"""Validate a report document against a (small subset of) JSON Schema.

Usage: check_schema.py [--jsonl] SCHEMA.json DOC.json [DOC2.json ...]

With --jsonl every non-blank LINE of each DOC file is validated as one
document (the serve daemon's response-frame transcript format); without it
each DOC file is one JSON document.

Supports the keywords schema_v1.json actually uses -- type, enum, const,
required, properties, additionalProperties (bool), items, minimum, oneOf --
plus "$defs"/"$ref" for local reuse. Stdlib only, so the ctest / CI step
needs nothing beyond a python3 interpreter.
"""
import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, name):
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, TYPES[name])


def resolve(schema, root):
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise SystemExit(f"unsupported $ref: {ref}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path, errors):
    schema = resolve(schema, root)
    if "oneOf" in schema:
        attempts = []
        for sub in schema["oneOf"]:
            sub_errors = []
            validate(value, sub, root, path, sub_errors)
            if not sub_errors:
                break
            attempts.append(sub_errors)
        else:
            errors.append(f"{path}: matches no oneOf branch")
            for i, sub_errors in enumerate(attempts):
                errors.extend(f"  (branch {i}) {e}" for e in sub_errors)
        return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")
        return
    if "type" in schema:
        names = schema["type"]
        if isinstance(names, str):
            names = [names]
        if not any(type_ok(value, n) for n in names):
            errors.append(
                f"{path}: expected {'/'.join(names)}, "
                f"got {type(value).__name__}")
            return
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required member '{key}'")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, root, f"{path}.{key}", errors)
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected member '{key}'")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], root, f"{path}[{i}]", errors)


def check_one(doc, schema, label):
    errors = []
    validate(doc, schema, schema, "$", errors)
    if errors:
        print(f"{label}: INVALID", file=sys.stderr)
        for err in errors:
            print(f"  {err}", file=sys.stderr)
        return 1
    print(f"{label}: ok")
    return 0


def main(argv):
    args = list(argv[1:])
    jsonl = "--jsonl" in args
    if jsonl:
        args.remove("--jsonl")
    if len(args) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(args[0], encoding="utf-8") as f:
        schema = json.load(f)
    status = 0
    for doc_path in args[1:]:
        with open(doc_path, encoding="utf-8") as f:
            if jsonl:
                for lineno, line in enumerate(f, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    label = f"{doc_path}:{lineno}"
                    try:
                        doc = json.loads(line)
                    except json.JSONDecodeError as e:
                        print(f"{label}: INVALID", file=sys.stderr)
                        print(f"  not JSON: {e}", file=sys.stderr)
                        status = 1
                        continue
                    status |= check_one(doc, schema, label)
            else:
                status |= check_one(json.load(f), schema, doc_path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
