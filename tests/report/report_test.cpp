#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "report/report.hpp"
#include "util/check.hpp"

namespace subg::report {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "count"});
  t.align_right(1);
  t.add_row({"inv", "2"});
  t.add_row({"fulladder", "13"});
  std::string s = t.to_string();

  // Header, rule, two rows.
  std::vector<std::string> lines;
  for (std::size_t pos = 0; pos < s.size();) {
    std::size_t nl = s.find('\n', pos);
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  // Right-aligned numeric column: every line ends at the same width.
  EXPECT_EQ(lines[0].size(), lines[1].size());
  EXPECT_EQ(lines[2].back(), '2');
  EXPECT_EQ(lines[3].substr(lines[3].size() - 2), "13");
  EXPECT_EQ(lines[2].size(), lines[3].size());
  EXPECT_EQ(lines[0].substr(0, 4), "name");
  EXPECT_EQ(lines[1].find_first_not_of('-'), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Fit, ExactLine) {
  std::array<double, 4> x = {1, 2, 3, 4};
  std::array<double, 4> y = {3, 5, 7, 9};  // y = 2x + 1
  LinearFit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Fit, NoisyLineStillHighR2) {
  std::array<double, 6> x = {1, 2, 3, 4, 5, 6};
  std::array<double, 6> y = {2.1, 3.9, 6.2, 7.8, 10.1, 11.9};
  LinearFit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 2.0, 0.1);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Fit, ConstantSeriesHasZeroSlope) {
  std::array<double, 3> x = {1, 2, 3};
  std::array<double, 3> y = {5, 5, 5};
  LinearFit f = fit_line(x, y);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);  // zero variance: model is exact
}

TEST(Fit, NeedsTwoPoints) {
  std::array<double, 1> x = {1}, y = {2};
  EXPECT_THROW(static_cast<void>(fit_line(x, y)), Error);
}

TEST(Fit, ScalingExponent) {
  // y = 3 x^1.5
  std::vector<double> x, y;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * std::sqrt(v));
  }
  EXPECT_NEAR(scaling_exponent(x, y), 1.5, 1e-9);
  // Linear data → exponent ≈ 1.
  std::vector<double> ylin;
  for (double v : x) ylin.push_back(7.0 * v);
  EXPECT_NEAR(scaling_exponent(x, ylin), 1.0, 1e-9);
}

}  // namespace
}  // namespace subg::report
