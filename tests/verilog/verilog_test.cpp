#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "util/check.hpp"
#include "verilog/verilog.hpp"

namespace subg::verilog {
namespace {

constexpr const char* kGateNetlist = R"(
// two nands and an inverter
module nand2 (a, b, y);
  inout a, b, y;
  (* subg_global *) wire vdd;
  (* subg_global *) wire gnd;
  pmos mp0 (.d(y), .g(a), .s(vdd), .b(vdd));
  pmos mp1 (.d(y), .g(b), .s(vdd), .b(vdd));
  nmos mn0 (.d(y), .g(a), .s(x), .b(gnd));
  nmos mn1 (.d(x), .g(b), .s(gnd), .b(gnd));
endmodule

module top (in0, in1, in2, out);
  inout in0, in1, in2, out;
  (* subg_global *) wire vdd;
  (* subg_global *) wire gnd;
  wire n0; wire n1;
  nand2 g0 (.a(in0), .b(in1), .y(n0));
  nand2 g1 (.a(n0), .b(in2), .y(n1));
  pmos mp (.d(out), .g(n1), .s(vdd), .b(vdd));
  nmos mn (.d(out), .g(n1), .s(gnd), .b(gnd));
endmodule
)";

TEST(Verilog, ParsesHierarchy) {
  Design d = read_string(kGateNetlist);
  ASSERT_TRUE(d.find_module("nand2").has_value());
  ASSERT_TRUE(d.find_module("top").has_value());
  EXPECT_TRUE(d.is_global_name("vdd"));
  EXPECT_EQ(d.flattened_device_count("top"), 10u);
  Netlist flat = d.flatten("top");
  flat.validate();
  ASSERT_EQ(flat.ports().size(), 4u);
  EXPECT_TRUE(flat.find_device("g0/mn0").has_value());
  EXPECT_TRUE(flat.find_net("g0/x").has_value());
}

TEST(Verilog, ReadFlatDefaultsToLastModule) {
  Netlist flat = read_flat(kGateNetlist);
  EXPECT_EQ(flat.name(), "top");
  EXPECT_EQ(flat.device_count(), 10u);
}

TEST(Verilog, MatchAgainstParsedHost) {
  Netlist host = read_flat(kGateNetlist);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 2u);
}

TEST(Verilog, PositionalConnections) {
  const char* text = R"(
module m (a, y);
  inout a, y;
  (* subg_global *) wire vdd;
  (* subg_global *) wire gnd;
  pmos p0 (y, a, vdd, vdd);
  nmos n0 (y, a, gnd, gnd);
endmodule
)";
  Netlist flat = read_flat(text);
  EXPECT_EQ(flat.device_count(), 2u);
  auto pins = flat.device_pins(*flat.find_device("p0"));
  EXPECT_EQ(flat.net_name(pins[0]), "y");
  EXPECT_EQ(flat.net_name(pins[1]), "a");
  EXPECT_EQ(flat.net_name(pins[2]), "vdd");
}

TEST(Verilog, DefinitionOrderDoesNotMatter) {
  // top defined before the module it instantiates.
  const char* text = R"(
module top (x, z);
  inout x, z;
  buf2 u0 (.i(x), .o(z));
endmodule
module buf2 (i, o);
  inout i, o;
  (* subg_global *) wire vdd;
  (* subg_global *) wire gnd;
  pmos p (.d(o), .g(i), .s(vdd), .b(vdd));
  nmos n (.d(o), .g(i), .s(gnd), .b(gnd));
endmodule
)";
  Netlist flat = read_flat(text, {}, "top");
  EXPECT_EQ(flat.device_count(), 2u);
}

TEST(Verilog, SupplyNetsAreGlobals) {
  const char* text = R"(
module m (a, y);
  inout a, y;
  supply1 vdd;
  supply0 gnd;
  pmos p0 (.d(y), .g(a), .s(vdd), .b(vdd));
  nmos n0 (.d(y), .g(a), .s(gnd), .b(gnd));
endmodule
)";
  Netlist flat = read_flat(text);
  EXPECT_TRUE(flat.is_global(*flat.find_net("vdd")));
  EXPECT_TRUE(flat.is_global(*flat.find_net("gnd")));
}

TEST(Verilog, Errors) {
  EXPECT_THROW(static_cast<void>(read_string("module m (a; endmodule")), Error);
  EXPECT_THROW(static_cast<void>(read_string(
                   "module m (a);\n inout a;\n nosuch u0 (.x(a));\nendmodule")),
               Error);
  EXPECT_THROW(static_cast<void>(read_string(
                   "module m (a);\n inout a;\n nmos u0 (.q(a));\nendmodule")),
               Error);
  // Unconnected pin.
  EXPECT_THROW(static_cast<void>(read_string(
                   "module m (a);\n inout a;\n nmos u0 (.d(a));\nendmodule")),
               Error);
}

TEST(Verilog, WriterRoundTripsGateLevelNetlists) {
  // Extract a generated adder to gates, write Verilog, read it back with
  // the extended catalog, and compare.
  gen::Generated g = gen::ripple_carry_adder(3);
  cells::CellLibrary lib;
  std::vector<extract::LibraryCell> cells;
  for (const char* c : {"xor2", "nand2"}) {
    cells.push_back(extract::LibraryCell{c, lib.pattern(c)});
  }
  extract::ExtractResult result = extract::extract_gates(g.netlist, cells);
  ASSERT_EQ(result.report.unextracted_primitives, 0u);

  std::string text = write_string(result.netlist);
  EXPECT_NE(text.find("xor2 "), std::string::npos);

  ReadOptions opts;
  opts.catalog = result.netlist.catalog_ptr();
  Netlist back = read_flat(text, opts);
  CompareResult cmp = compare_netlists(result.netlist, back);
  EXPECT_TRUE(cmp.isomorphic) << cmp.reason << "\n" << text;
}

TEST(Verilog, WriterRoundTripsTransistorNetlists) {
  gen::Generated g = gen::c17();
  std::string text = write_string(g.netlist);
  Netlist back = read_flat(text);
  CompareResult cmp = compare_netlists(g.netlist, back);
  EXPECT_TRUE(cmp.isomorphic) << cmp.reason;
}

TEST(Verilog, SanitizesAwkwardNames) {
  auto cat = DeviceCatalog::cmos3();
  Netlist nl(cat, "weird/name");
  NetId a = nl.add_net("$n0"), y = nl.add_net("x0/y"), g = nl.add_net("1bad");
  nl.add_device(cat->require("nmos"), {y, a, g}, "$d0");
  std::string text = write_string(nl);
  // Must parse back cleanly.
  ReadOptions opts;
  opts.catalog = cat;
  Netlist back = read_flat(text, opts);
  EXPECT_EQ(back.device_count(), 1u);
  CompareResult cmp = compare_netlists(nl, back);
  EXPECT_TRUE(cmp.isomorphic) << cmp.reason << "\n" << text;
}

}  // namespace
}  // namespace subg::verilog
