// Every combinational cell's transistor-level pattern must compute exactly
// its advertised truth function — checked by exhaustive switch-level vs
// gate-level equivalence. This pins down the cell library (and the
// simulator) functionally, so structural tests elsewhere rest on correct
// cells.
#include <gtest/gtest.h>

#include <set>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gen/generators.hpp"
#include "sim/sim.hpp"
#include "util/rng.hpp"

namespace subg::sim {
namespace {

/// Combinational cells with a single-gate functional model.
const std::vector<const char*>& functional_cells() {
  static const std::vector<const char*> kCells = {
      "inv",   "buf",  "nand2", "nand3", "nand4", "nor2",      "nor3",
      "nor4",  "and2", "and3",  "and4",  "or2",   "or3",       "or4",
      "aoi21", "aoi22", "oai21", "xor2",  "xnor2", "mux2",
      "halfadder", "fulladder"};
  return kCells;
}

class CellFunction : public ::testing::TestWithParam<const char*> {};

TEST_P(CellFunction, TransistorsMatchTruthFunction) {
  const std::string cell = GetParam();
  cells::CellLibrary lib;
  Netlist transistors = lib.pattern(cell);

  // One-gate netlist of the same cell type, wired to same-named nets.
  std::vector<extract::LibraryCell> cells;
  cells.push_back(extract::LibraryCell{cell, lib.pattern(cell)});
  auto cat = extract::extended_catalog(*DeviceCatalog::cmos(), cells);
  Netlist gate(cat, cell + "_gate");
  // Output pin names per cell (everything else is an input).
  std::set<std::string> output_names = {"y"};
  if (cell == "halfadder") output_names = {"s", "c"};
  if (cell == "fulladder") output_names = {"s", "cout"};

  std::vector<NetId> pins;
  std::vector<std::string> inputs, outputs;
  for (NetId port : transistors.ports()) {
    const std::string& name = transistors.net_name(port);
    pins.push_back(gate.add_net(name));
    if (output_names.contains(name)) {
      outputs.push_back(name);
    } else {
      inputs.push_back(name);
    }
  }
  gate.add_device(cat->require(cell), pins);

  ASSERT_FALSE(inputs.empty());
  ASSERT_FALSE(outputs.empty());
  EquivalenceResult r = check_equivalence(transistors, gate, inputs, outputs);
  EXPECT_TRUE(r.equivalent) << cell << ": " << r.counterexample;
  EXPECT_EQ(r.inconclusive, 0u) << cell;
  EXPECT_EQ(r.vectors_checked, std::size_t{1} << inputs.size()) << cell;
}

INSTANTIATE_TEST_SUITE_P(AllCombinational, CellFunction,
                         ::testing::ValuesIn(functional_cells()),
                         [](const auto& info) { return std::string(info.param); });

TEST(CellFunction, GeneratedAddersAddAcrossWidths) {
  for (int bits : {2, 3, 5}) {
    gen::Generated rca = gen::ripple_carry_adder(bits);
    Simulator s(rca.netlist);
    Xoshiro256 rng(bits);
    for (int trial = 0; trial < 16; ++trial) {
      const std::uint32_t a =
          static_cast<std::uint32_t>(rng.below(1u << bits));
      const std::uint32_t b =
          static_cast<std::uint32_t>(rng.below(1u << bits));
      const std::uint32_t cin = static_cast<std::uint32_t>(rng.below(2));
      std::map<std::string, V> in;
      for (int i = 0; i < bits; ++i) {
        in["a" + std::to_string(i)] = ((a >> i) & 1) ? V::k1 : V::k0;
        in["b" + std::to_string(i)] = ((b >> i) & 1) ? V::k1 : V::k0;
      }
      in["cin"] = cin ? V::k1 : V::k0;
      SolveResult r = s.solve(in);
      ASSERT_TRUE(r.converged);
      std::uint32_t got = 0;
      for (int i = 0; i < bits; ++i) {
        if (r.value(*rca.netlist.find_net("s" + std::to_string(i))) == V::k1) {
          got |= 1u << i;
        }
      }
      if (r.value(*rca.netlist.find_net("cout")) == V::k1) got |= 1u << bits;
      EXPECT_EQ(got, a + b + cin) << bits << ": " << a << "+" << b << "+" << cin;
    }
  }
}

TEST(CellFunction, KoggeStoneAddsCorrectly) {
  gen::Generated ks = gen::kogge_stone_adder(6);
  Simulator s(ks.netlist);
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 24; ++trial) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.below(64));
    const std::uint32_t b = static_cast<std::uint32_t>(rng.below(64));
    std::map<std::string, V> in;
    for (int i = 0; i < 6; ++i) {
      in["a" + std::to_string(i)] = ((a >> i) & 1) ? V::k1 : V::k0;
      in["b" + std::to_string(i)] = ((b >> i) & 1) ? V::k1 : V::k0;
    }
    SolveResult r = s.solve(in);
    ASSERT_TRUE(r.converged);
    std::uint32_t got = 0;
    for (int i = 0; i < 6; ++i) {
      V v = r.value(*ks.netlist.find_net("s" + std::to_string(i)));
      ASSERT_TRUE(v == V::k0 || v == V::k1) << "s" << i;
      if (v == V::k1) got |= 1u << i;
    }
    EXPECT_EQ(got, (a + b) & 63u) << a << "+" << b;
  }
}

TEST(CellFunction, ParityTreeComputesParity) {
  gen::Generated tree = gen::parity_tree(9);
  Simulator s(tree.netlist);
  Xoshiro256 rng(5);
  // The tree output is the last xor's output net.
  const std::string out = "x7";  // 8 xor2s, serial 0..7; root is x7
  for (int trial = 0; trial < 20; ++trial) {
    std::uint32_t bits = static_cast<std::uint32_t>(rng.below(512));
    std::map<std::string, V> in;
    int ones = 0;
    for (int i = 0; i < 9; ++i) {
      const bool one = (bits >> i) & 1;
      ones += one;
      in["in" + std::to_string(i)] = one ? V::k1 : V::k0;
    }
    SolveResult r = s.solve(in);
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.value(*tree.netlist.find_net(out)),
              (ones & 1) ? V::k1 : V::k0);
  }
}

}  // namespace
}  // namespace subg::sim
