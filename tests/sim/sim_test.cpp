#include <gtest/gtest.h>

#include "benchfmt/benchfmt.hpp"
#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gen/generators.hpp"
#include "sim/sim.hpp"
#include "util/check.hpp"

namespace subg::sim {
namespace {

using cells::CellLibrary;

V solve_one(const Simulator& s, std::map<std::string, V> in,
            const std::string& out) {
  SolveResult r = s.solve(in);
  EXPECT_TRUE(r.converged);
  return r.value(*s.netlist().find_net(out));
}

TEST(Sim, TransistorInverterTruthTable) {
  CellLibrary lib;
  Netlist inv = lib.pattern("inv");
  Simulator s(inv);
  EXPECT_EQ(solve_one(s, {{"a", V::k0}}, "y"), V::k1);
  EXPECT_EQ(solve_one(s, {{"a", V::k1}}, "y"), V::k0);
  EXPECT_EQ(solve_one(s, {{"a", V::kX}}, "y"), V::kX);
}

TEST(Sim, TransistorNandTruthTable) {
  CellLibrary lib;
  Netlist nand2 = lib.pattern("nand2");
  Simulator s(nand2);
  auto y = [&](V a, V b) {
    return solve_one(s, {{"a0", a}, {"a1", b}}, "y");
  };
  EXPECT_EQ(y(V::k0, V::k0), V::k1);
  EXPECT_EQ(y(V::k0, V::k1), V::k1);
  EXPECT_EQ(y(V::k1, V::k0), V::k1);
  EXPECT_EQ(y(V::k1, V::k1), V::k0);
  // One X input: output known only when the other input is 0.
  EXPECT_EQ(y(V::k0, V::kX), V::k1);
  EXPECT_EQ(y(V::kX, V::k1), V::kX);
}

TEST(Sim, TransistorXorThroughInternalInverters) {
  CellLibrary lib;
  Netlist xor2 = lib.pattern("xor2");
  Simulator s(xor2);
  auto y = [&](V a, V b) { return solve_one(s, {{"a", a}, {"b", b}}, "y"); };
  EXPECT_EQ(y(V::k0, V::k0), V::k0);
  EXPECT_EQ(y(V::k0, V::k1), V::k1);
  EXPECT_EQ(y(V::k1, V::k0), V::k1);
  EXPECT_EQ(y(V::k1, V::k1), V::k0);
}

TEST(Sim, FloatingAndUndriven) {
  CellLibrary lib;
  Netlist inv = lib.pattern("inv");
  Simulator s(inv);
  // No input at all: gate floats (Z) → both transistors maybe → output X.
  SolveResult r = s.solve({});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.value(*inv.find_net("y")), V::kX);
  EXPECT_EQ(r.value(*inv.find_net("a")), V::kZ);
}

TEST(Sim, CrowbarResolvesToX) {
  auto cat = DeviceCatalog::cmos3();
  Netlist nl(cat, "crowbar");
  NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd"), g = nl.add_net("g");
  nl.add_device(cat->require("nmos"), {vdd, g, gnd});
  Simulator s(nl);
  SolveResult r = s.solve({{"g", V::k1}});
  // Rails stay fixed, but a probe net shorted to both would be X; here the
  // conducting group contains both rails: every non-fixed member is X.
  // Add a probe:
  Netlist nl2(cat, "crowbar2");
  NetId v2 = nl2.add_net("vdd"), g2n = nl2.add_net("gnd"), gg = nl2.add_net("g");
  NetId probe = nl2.add_net("probe");
  nl2.add_device(cat->require("nmos"), {v2, gg, probe});
  nl2.add_device(cat->require("nmos"), {probe, gg, g2n});
  Simulator s2(nl2);
  SolveResult r2 = s2.solve({{"g", V::k1}});
  EXPECT_EQ(r2.value(probe), V::kX);
  (void)r;
}

TEST(Sim, GateLevelAdderArithmetic) {
  // Gate-level fulladder cell: s = a^b^cin, cout = majority.
  CellLibrary lib;
  std::vector<extract::LibraryCell> cells;
  cells.push_back(extract::LibraryCell{"fulladder", lib.pattern("fulladder")});
  auto cat = extract::extended_catalog(*DeviceCatalog::cmos(), cells);
  Netlist gates(cat, "fa");
  NetId a = gates.add_net("a"), b = gates.add_net("b"), cin = gates.add_net("cin");
  NetId sum = gates.add_net("s"), cout = gates.add_net("cout");
  gates.add_device(cat->require("fulladder"), {a, b, cin, sum, cout});
  Simulator s(gates);
  for (int v = 0; v < 8; ++v) {
    const V va = (v & 1) ? V::k1 : V::k0;
    const V vb = (v & 2) ? V::k1 : V::k0;
    const V vc = (v & 4) ? V::k1 : V::k0;
    SolveResult r = s.solve({{"a", va}, {"b", vb}, {"cin", vc}});
    const int total = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
    EXPECT_EQ(r.value(sum), (total & 1) ? V::k1 : V::k0) << v;
    EXPECT_EQ(r.value(cout), (total >= 2) ? V::k1 : V::k0) << v;
  }
}

TEST(Sim, TransistorAdderComputesArithmetic) {
  gen::Generated rca = gen::ripple_carry_adder(4);
  Simulator s(rca.netlist);
  for (std::uint32_t a = 0; a < 16; a += 3) {
    for (std::uint32_t b = 0; b < 16; b += 5) {
      std::map<std::string, V> in;
      for (int i = 0; i < 4; ++i) {
        in["a" + std::to_string(i)] = ((a >> i) & 1) ? V::k1 : V::k0;
        in["b" + std::to_string(i)] = ((b >> i) & 1) ? V::k1 : V::k0;
      }
      in["cin"] = V::k0;
      SolveResult r = s.solve(in);
      ASSERT_TRUE(r.converged);
      std::uint32_t got = 0;
      for (int i = 0; i < 4; ++i) {
        V v = r.value(*rca.netlist.find_net("s" + std::to_string(i)));
        ASSERT_TRUE(v == V::k0 || v == V::k1);
        if (v == V::k1) got |= 1u << i;
      }
      if (r.value(*rca.netlist.find_net("cout")) == V::k1) got |= 16;
      EXPECT_EQ(got, a + b) << a << "+" << b;
    }
  }
}

TEST(Sim, ExtractionIsFunctionallyEquivalent) {
  // The headline: transistors vs SubGemini-extracted gates compute the same
  // function, exhaustively over all 2^9 input vectors.
  gen::Generated rca = gen::ripple_carry_adder(4);
  CellLibrary lib;
  std::vector<extract::LibraryCell> cells;
  cells.push_back(extract::LibraryCell{"fulladder", lib.pattern("fulladder")});
  extract::ExtractResult gates = extract::extract_gates(rca.netlist, cells);
  ASSERT_EQ(gates.report.unextracted_primitives, 0u);

  std::vector<std::string> inputs = {"cin"};
  std::vector<std::string> outputs = {"cout"};
  for (int i = 0; i < 4; ++i) {
    inputs.push_back("a" + std::to_string(i));
    inputs.push_back("b" + std::to_string(i));
    outputs.push_back("s" + std::to_string(i));
  }
  EquivalenceResult r =
      check_equivalence(rca.netlist, gates.netlist, inputs, outputs);
  EXPECT_TRUE(r.equivalent) << r.counterexample;
  EXPECT_EQ(r.vectors_checked, 512u);
  EXPECT_EQ(r.inconclusive, 0u);
}

TEST(Sim, C17TransistorsMatchGateEquations) {
  benchfmt::BenchCircuit c17 = benchfmt::read_string(benchfmt::c17_text());
  CellLibrary lib;
  std::vector<extract::LibraryCell> cells;
  cells.push_back(extract::LibraryCell{"nand2", lib.pattern("nand2")});
  extract::ExtractResult gates = extract::extract_gates(c17.transistors, cells);

  std::vector<std::string> outputs = c17.outputs;
  EquivalenceResult r = check_equivalence(c17.transistors, gates.netlist,
                                          c17.inputs, outputs);
  EXPECT_TRUE(r.equivalent) << r.counterexample;
  EXPECT_EQ(r.vectors_checked, 32u);
  EXPECT_EQ(r.inconclusive, 0u);
}

TEST(Sim, EquivalenceCatchesAPlantedBug) {
  gen::Generated good = gen::c17();
  // Bad copy: one nand input rewired (same edit as the LVS test).
  Netlist bad(good.netlist.catalog_ptr(), "bad");
  for (std::uint32_t n = 0; n < good.netlist.net_count(); ++n) {
    const NetId id(n);
    NetId nn = bad.add_net(good.netlist.net_name(id));
    if (good.netlist.is_global(id)) bad.mark_global(nn);
  }
  for (std::uint32_t d = 0; d < good.netlist.device_count(); ++d) {
    const DeviceId id(d);
    std::vector<NetId> pins;
    for (NetId pn : good.netlist.device_pins(id)) pins.push_back(NetId(pn.value));
    // Gate 4 (devices 16..19) gets its a0 input moved from N10 to N7 on
    // BOTH the pullup (16) and the stack nmos (18): still clean CMOS, but
    // output 22 now computes NAND(N7, N16) — a definite functional bug.
    if (d == 16 || d == 18) {
      ASSERT_EQ(good.netlist.net_name(pins[1]), "N10");
      pins[1] = *bad.find_net("N7");
    }
    bad.add_device(good.netlist.device_type(id), pins);
  }
  std::vector<std::string> inputs = {"N1", "N2", "N3", "N6", "N7"};
  std::vector<std::string> outputs = {"N22", "N23"};
  EquivalenceResult r = check_equivalence(good.netlist, bad, inputs, outputs);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(Sim, RejectsSequentialCells) {
  CellLibrary lib;
  std::vector<extract::LibraryCell> cells;
  cells.push_back(extract::LibraryCell{"dff", lib.pattern("dff")});
  auto cat = extract::extended_catalog(*DeviceCatalog::cmos(), cells);
  Netlist gates(cat, "seq");
  NetId d = gates.add_net("d"), clk = gates.add_net("clk"), q = gates.add_net("q");
  gates.add_device(cat->require("dff"), {d, clk, q});
  EXPECT_THROW(Simulator s(gates), Error);
}

}  // namespace
}  // namespace subg::sim
