# Run a command and require an EXACT exit code (ctest's WILL_FAIL only
# distinguishes zero from nonzero, which cannot tell "resource limit hit"
# (75) apart from a crash). Usage:
#
#   cmake "-DCMD=<exe>;arg;arg;..." -DEXPECT=<code> [-DEXPECT_RE=<regex>]
#         -P expect_exit.cmake
#
# EXPECT_RE, when given, must additionally match the combined output.
if(NOT DEFINED CMD OR NOT DEFINED EXPECT)
  message(FATAL_ERROR "expect_exit.cmake needs -DCMD and -DEXPECT")
endif()

execute_process(COMMAND ${CMD}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)

if(NOT rc EQUAL ${EXPECT})
  message(FATAL_ERROR "expected exit ${EXPECT}, got '${rc}'\n"
                      "command: ${CMD}\nstdout:\n${out}\nstderr:\n${err}")
endif()

if(DEFINED EXPECT_RE)
  set(combined "${out}${err}")
  if(NOT combined MATCHES "${EXPECT_RE}")
    message(FATAL_ERROR "output does not match '${EXPECT_RE}'\n"
                        "stdout:\n${out}\nstderr:\n${err}")
  endif()
endif()
