# Run a subgemini command with --format=json, capture stdout, and validate
# the document against the v1 schema with the python checker.
#
# Arguments (all -D):
#   CMD     - semicolon-separated command to run (already includes --format=json)
#   OUT     - file to capture stdout into
#   PYTHON  - python3 interpreter
#   CHECKER - path to check_schema.py
#   SCHEMA  - path to schema_v1.json
#   EXPECT  - optional expected exit code of CMD (default 0)
if(NOT DEFINED EXPECT)
  set(EXPECT 0)
endif()
execute_process(COMMAND ${CMD} OUTPUT_FILE ${OUT} RESULT_VARIABLE rc)
if(NOT rc EQUAL ${EXPECT})
  message(FATAL_ERROR "command exited ${rc}, expected ${EXPECT}: ${CMD}")
endif()
execute_process(COMMAND ${PYTHON} ${CHECKER} ${SCHEMA} ${OUT}
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "schema validation failed for output of: ${CMD}")
endif()
