// Recovering-parse behaviour of the three front ends over the malformed
// decks in testdata/bad/: strict mode (the default) throws subg::Error at
// the first problem exactly as before; recovering mode collects one
// Diagnostic per problem, skips the offending card/statement, and keeps
// everything that did parse.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "benchfmt/benchfmt.hpp"
#include "util/check.hpp"
#include "spice/spice.hpp"
#include "verilog/verilog.hpp"

namespace subg {
namespace {

std::string bad(const char* name) {
  return std::string(SUBG_TESTDATA_DIR) + "/bad/" + name;
}

constexpr auto npos = std::string::npos;

// --- SPICE --------------------------------------------------------------

TEST(Recovery, SpiceTruncatedSubcktStrictThrows) {
  EXPECT_THROW(static_cast<void>(spice::read_file(bad("truncated_subckt.sp"))),
               Error);
}

TEST(Recovery, SpiceTruncatedSubcktRecovers) {
  DiagnosticSink sink;
  spice::ReadOptions opts;
  opts.diagnostics = &sink;
  Design d = spice::read_file(bad("truncated_subckt.sp"), opts);
  ASSERT_EQ(sink.error_count(), 1u);
  EXPECT_NE(sink.diagnostics()[0].message.find("unterminated"), npos);
  // read_file stamps the diagnostic with the input path.
  EXPECT_NE(sink.diagnostics()[0].file.find("truncated_subckt.sp"), npos);
  // The dangling definition is implicitly closed and keeps its devices.
  auto inv = d.find_module("inv");
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(d.module(*inv).device_count(), 2u);
}

TEST(Recovery, SpiceArityMismatchStrictThrows) {
  EXPECT_THROW(static_cast<void>(spice::read_file(bad("arity_mismatch.sp"))),
               Error);
}

TEST(Recovery, SpiceArityMismatchCollectsEveryDiagnostic) {
  DiagnosticSink sink;
  spice::ReadOptions opts;
  opts.diagnostics = &sink;
  Design d = spice::read_file(bad("arity_mismatch.sp"), opts);
  // x1 (wrong instance arity), m2 (too few MOSFET nodes), q3 (unsupported
  // card) — each with its own line number.
  ASSERT_EQ(sink.error_count(), 3u);
  std::set<std::size_t> lines;
  for (const Diagnostic& diag : sink.diagnostics()) lines.insert(diag.line);
  EXPECT_EQ(lines, (std::set<std::size_t>{8, 9, 11}));
  // The valid instance x2 survives in the top module.
  EXPECT_EQ(d.module(ModuleId(0)).instance_count(), 1u);
}

TEST(Recovery, SpiceRejectedCardLeavesNoPhantomNets) {
  // The bad x1 card on line 8 names net 'b'; a card rejected in recovering
  // mode must not leave behind nets it mentioned (they would survive as
  // degree-0 nets and change comparison results).
  DiagnosticSink sink;
  spice::ReadOptions opts;
  opts.diagnostics = &sink;
  Design d = spice::read_file(bad("arity_mismatch.sp"), opts);
  const Module& main_mod = d.module(ModuleId(0));
  EXPECT_FALSE(main_mod.find_net("b").has_value());
  EXPECT_TRUE(main_mod.find_net("a").has_value());  // used by the valid x2
}

TEST(Recovery, DiagnosticCapCountsOverflowInsteadOfGrowing) {
  DiagnosticSink sink(/*max_diagnostics=*/2);
  spice::ReadOptions opts;
  opts.diagnostics = &sink;
  static_cast<void>(spice::read_file(bad("arity_mismatch.sp"), opts));
  EXPECT_EQ(sink.diagnostics().size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);
  EXPECT_EQ(sink.error_count(), 3u);  // includes the dropped one
}

// --- .bench -------------------------------------------------------------

TEST(Recovery, BenchBadGateStrictThrows) {
  EXPECT_THROW(static_cast<void>(benchfmt::read_file(bad("bad_gate.bench"))),
               Error);
}

TEST(Recovery, BenchBadGateRecovers) {
  DiagnosticSink sink;
  benchfmt::ReadOptions opts;
  opts.diagnostics = &sink;
  benchfmt::BenchCircuit c = benchfmt::read_file(bad("bad_gate.bench"), opts);
  // MAJORITY (unsupported function) and the unclosed "h = NAND(a".
  EXPECT_EQ(sink.error_count(), 2u);
  // Both valid NAND gates still expand to cells.
  EXPECT_EQ(c.gates.at("nand2"), 2u);
  EXPECT_EQ(c.inputs.size(), 2u);
  EXPECT_EQ(c.outputs.size(), 1u);
}

// --- Verilog ------------------------------------------------------------

TEST(Recovery, VerilogUnknownPrimitiveStrictThrows) {
  EXPECT_THROW(
      static_cast<void>(verilog::read_file(bad("unknown_primitive.v"))), Error);
}

TEST(Recovery, VerilogUnknownPrimitiveRecovers) {
  DiagnosticSink sink;
  verilog::ReadOptions opts;
  opts.diagnostics = &sink;
  Design d = verilog::read_file(bad("unknown_primitive.v"), opts);
  ASSERT_EQ(sink.error_count(), 1u);
  EXPECT_NE(sink.diagnostics()[0].message.find("frob"), npos);
  auto top = d.find_module("top");
  ASSERT_TRUE(top.has_value());
  // The pmos/nmos pair after the bad instance survived.
  EXPECT_EQ(d.module(*top).device_count(), 2u);
}

TEST(Recovery, VerilogCollectsAcrossModules) {
  const char* text =
      "module a (x); wire x; @ endmodule\n"
      "module b (y); wire y; nmos n1 (.d(y), .g(y), .s(y)); endmodule\n"
      "module c (z); wire z; endmodule\n";
  // Strict: the stray '@' is fatal.
  EXPECT_THROW(static_cast<void>(verilog::read_string(text)), Error);

  DiagnosticSink sink;
  verilog::ReadOptions opts;
  opts.diagnostics = &sink;
  Design d = verilog::read_string(text, opts);
  // '@' (tokenizer) and n1's unconnected 'b' pin — failures in two
  // different modules, both recorded, later modules unaffected.
  EXPECT_EQ(sink.error_count(), 2u);
  EXPECT_TRUE(d.find_module("a").has_value());
  EXPECT_TRUE(d.find_module("c").has_value());
}

}  // namespace
}  // namespace subg
