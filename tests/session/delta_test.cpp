// ECO delta grammar and application (session/delta.hpp): the JSON-lines
// parser, its "delta line N: ..." error contract, and apply_delta's op
// counts + pedigree tracking (the bookkeeping HostSession::apply turns
// into the label-cache dirty cone).
#include <gtest/gtest.h>

#include <string>

#include "netlist/netlist.hpp"
#include "session/delta.hpp"
#include "util/check.hpp"

namespace subg {
namespace {

/// EXPECT that `fn` throws subg::Error whose message starts with
/// "delta line <line>:".
template <typename Fn>
void expect_line_error(std::size_t line, Fn fn) {
  try {
    fn();
    FAIL() << "expected a delta line " << line << " error";
  } catch (const Error& e) {
    const std::string prefix = "delta line " + std::to_string(line) + ":";
    EXPECT_EQ(std::string(e.what()).substr(0, prefix.size()), prefix)
        << e.what();
  }
}

TEST(DeltaParse, AllOpsWithCommentsAndBlanks) {
  const NetlistDelta delta = parse_delta(
      "# an ECO, with commentary\n"
      "\n"
      "{\"op\":\"add_net\",\"name\":\"x\",\"global\":true,\"port\":true}\n"
      "  {\"op\":\"remove_net\",\"name\":\"y\"}\n"
      "{\"op\":\"add_device\",\"type\":\"nmos\",\"name\":\"m9\","
      "\"nets\":[\"a\",\"b\"]}\n"
      "{\"op\":\"remove_device\",\"name\":\"m1\"}\n"
      "{\"op\":\"rename_net\",\"from\":\"a\",\"to\":\"b\"}\n"
      "{\"op\":\"rename_device\",\"from\":\"m1\",\"to\":\"m2\"}\n");
  ASSERT_EQ(delta.ops.size(), 6u);
  EXPECT_EQ(delta.ops[0].kind, DeltaOpKind::kAddNet);
  EXPECT_EQ(delta.ops[0].name, "x");
  EXPECT_TRUE(delta.ops[0].global);
  EXPECT_TRUE(delta.ops[0].port);
  EXPECT_EQ(delta.ops[0].line, 3u);  // comments/blanks still count lines
  EXPECT_EQ(delta.ops[1].kind, DeltaOpKind::kRemoveNet);
  EXPECT_EQ(delta.ops[1].name, "y");
  EXPECT_EQ(delta.ops[2].kind, DeltaOpKind::kAddDevice);
  EXPECT_EQ(delta.ops[2].type, "nmos");
  EXPECT_EQ(delta.ops[2].name, "m9");
  ASSERT_EQ(delta.ops[2].nets.size(), 2u);
  EXPECT_EQ(delta.ops[2].nets[1], "b");
  EXPECT_EQ(delta.ops[3].kind, DeltaOpKind::kRemoveDevice);
  EXPECT_EQ(delta.ops[4].kind, DeltaOpKind::kRenameNet);
  EXPECT_EQ(delta.ops[4].from, "a");
  EXPECT_EQ(delta.ops[4].to, "b");
  EXPECT_EQ(delta.ops[5].kind, DeltaOpKind::kRenameDevice);
  EXPECT_EQ(delta.ops[5].line, 8u);
}

TEST(DeltaParse, AnonymousAddDeviceAndEmptyText) {
  const NetlistDelta delta = parse_delta(
      "{\"op\":\"add_device\",\"type\":\"pmos\",\"nets\":[\"a\"]}");
  ASSERT_EQ(delta.ops.size(), 1u);
  EXPECT_TRUE(delta.ops[0].name.empty());  // auto-named at apply time
  EXPECT_TRUE(parse_delta("").ops.empty());
  EXPECT_TRUE(parse_delta("# only a comment\n\n").ops.empty());
}

TEST(DeltaParse, MalformedLinesNameTheLine) {
  expect_line_error(1, [] { (void)parse_delta("{\"op\":\"add_net\""); });
  expect_line_error(1, [] { (void)parse_delta("[1,2,3]"); });  // not an object
  expect_line_error(1, [] { (void)parse_delta("{\"op\":\"warp\"}"); });
  expect_line_error(1, [] { (void)parse_delta("{\"op\":\"add_net\"}"); });
  expect_line_error(
      1, [] { (void)parse_delta("{\"op\":\"add_net\",\"name\":\"\"}"); });
  expect_line_error(1, [] {
    (void)parse_delta(
        "{\"op\":\"add_net\",\"name\":\"x\",\"global\":\"yes\"}");
  });
  expect_line_error(
      1, [] { (void)parse_delta("{\"op\":\"add_device\",\"type\":\"n\"}"); });
  expect_line_error(1, [] {
    (void)parse_delta(
        "{\"op\":\"add_device\",\"type\":\"n\",\"nets\":[\"a\",7]}");
  });
  expect_line_error(1, [] {
    (void)parse_delta("{\"op\":\"rename_net\",\"from\":\"a\"}");
  });
  // The failing line is reported, not just "somewhere in the text".
  expect_line_error(3, [] {
    (void)parse_delta("# fine\n{\"op\":\"add_net\",\"name\":\"x\"}\nnot json");
  });
}

TEST(DeltaParse, MissingFileThrows) {
  EXPECT_THROW((void)parse_delta_file("/nonexistent/eco.delta"), Error);
}

// --- apply_delta -----------------------------------------------------------

class ApplyDeltaTest : public ::testing::Test {
 protected:
  /// inv-ish host: m1 = nmos(y, a, gnd, gnd) against the cmos catalog the
  /// delta tests speak (4-pin FETs, like the generators).
  ApplyDeltaTest() {
    a = nl.add_net("a");
    y = nl.add_net("y");
    gnd = nl.add_net("gnd");
    nl.mark_global(gnd);
    nl.add_device(nmos, {y, a, gnd, gnd}, "m1");
  }

  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos();
  DeviceTypeId nmos = cat->require("nmos");
  Netlist nl{cat, "host"};
  NetId a, y, gnd;
};

TEST_F(ApplyDeltaTest, OpCountsAndPedigree) {
  const NetlistDelta delta = parse_delta(
      "{\"op\":\"add_net\",\"name\":\"w\"}\n"
      "{\"op\":\"add_device\",\"type\":\"nmos\",\"name\":\"m2\","
      "\"nets\":[\"w\",\"y\",\"gnd\",\"gnd\"]}\n"
      "{\"op\":\"rename_net\",\"from\":\"a\",\"to\":\"a2\"}\n"
      "{\"op\":\"rename_device\",\"from\":\"m1\",\"to\":\"m1b\"}\n");
  const DeltaEffects fx = apply_delta(nl, delta);
  EXPECT_EQ(fx.device_ops, 1u);
  EXPECT_EQ(fx.net_ops, 1u);
  EXPECT_EQ(fx.rename_ops, 2u);
  EXPECT_TRUE(fx.fresh_nets.contains("w"));
  EXPECT_TRUE(fx.fresh_devices.contains("m2"));
  // Pre-existing nets that gained pins are touched; the fresh one is not.
  EXPECT_TRUE(fx.touched_nets.contains("y"));
  EXPECT_TRUE(fx.touched_nets.contains("gnd"));
  EXPECT_FALSE(fx.touched_nets.contains("w"));
  // Renames map the surviving name back to the pre-delta name.
  ASSERT_TRUE(fx.net_pre_name.contains("a2"));
  EXPECT_EQ(fx.net_pre_name.at("a2"), "a");
  ASSERT_TRUE(fx.device_pre_name.contains("m1b"));
  EXPECT_EQ(fx.device_pre_name.at("m1b"), "m1");
  // And the netlist reflects it all.
  EXPECT_TRUE(nl.find_device("m2").has_value());
  EXPECT_TRUE(nl.find_net("a2").has_value());
  EXPECT_FALSE(nl.find_net("a").has_value());
}

TEST_F(ApplyDeltaTest, ImplicitNetsAreFreshAndChainedRenamesCollapse) {
  const NetlistDelta delta = parse_delta(
      "{\"op\":\"add_device\",\"type\":\"nmos\","
      "\"nets\":[\"fresh1\",\"a\",\"gnd\",\"gnd\"]}\n"
      "{\"op\":\"rename_net\",\"from\":\"fresh1\",\"to\":\"fresh2\"}\n"
      "{\"op\":\"rename_net\",\"from\":\"a\",\"to\":\"b\"}\n"
      "{\"op\":\"rename_net\",\"from\":\"b\",\"to\":\"c\"}\n");
  const DeltaEffects fx = apply_delta(nl, delta);
  // A missing pin net is created implicitly: fresh, and a rename keeps it
  // fresh under the new name (not "renamed from fresh1").
  EXPECT_TRUE(fx.fresh_nets.contains("fresh2"));
  EXPECT_FALSE(fx.fresh_nets.contains("fresh1"));
  EXPECT_FALSE(fx.net_pre_name.contains("fresh2"));
  // a -> b -> c collapses to c -> a.
  ASSERT_TRUE(fx.net_pre_name.contains("c"));
  EXPECT_EQ(fx.net_pre_name.at("c"), "a");
  EXPECT_FALSE(fx.net_pre_name.contains("b"));
  // The implicit device got an auto name and is fresh.
  EXPECT_EQ(fx.fresh_devices.size(), 1u);
  EXPECT_EQ(fx.device_ops, 1u);
}

TEST_F(ApplyDeltaTest, RemoveDeviceDropsInternalNetsFromThePedigree) {
  // m2 hangs net "w" off y; removing m2 drops w (degree 0, not port or
  // global) — the pedigree must forget w and touch y.
  (void)apply_delta(nl, parse_delta(
      "{\"op\":\"add_device\",\"type\":\"nmos\",\"name\":\"m2\","
      "\"nets\":[\"w\",\"y\",\"gnd\",\"gnd\"]}\n"));
  const DeltaEffects fx = apply_delta(
      nl, parse_delta("{\"op\":\"remove_device\",\"name\":\"m2\"}"));
  EXPECT_EQ(fx.device_ops, 1u);
  EXPECT_TRUE(fx.touched_nets.contains("y"));
  EXPECT_FALSE(fx.fresh_nets.contains("w"));
  EXPECT_FALSE(fx.touched_nets.contains("w"));
  EXPECT_FALSE(nl.find_net("w").has_value());
  // Removing a just-added device inside ONE delta leaves no trace either.
  const DeltaEffects fx2 = apply_delta(nl, parse_delta(
      "{\"op\":\"add_device\",\"type\":\"nmos\",\"name\":\"m3\","
      "\"nets\":[\"v\",\"y\",\"gnd\",\"gnd\"]}\n"
      "{\"op\":\"remove_device\",\"name\":\"m3\"}\n"));
  EXPECT_EQ(fx2.device_ops, 2u);
  EXPECT_TRUE(fx2.fresh_devices.empty());
  EXPECT_TRUE(fx2.fresh_nets.empty());
}

TEST_F(ApplyDeltaTest, InapplicableOpsNameTheLineAndOpsApplyInOrder) {
  expect_line_error(1, [&] {
    (void)apply_delta(nl, parse_delta("{\"op\":\"add_net\",\"name\":\"a\"}"));
  });
  expect_line_error(1, [&] {
    (void)apply_delta(
        nl, parse_delta("{\"op\":\"remove_net\",\"name\":\"ghost\"}"));
  });
  // y has a pin: a live net cannot be removed.
  expect_line_error(1, [&] {
    (void)apply_delta(nl,
                      parse_delta("{\"op\":\"remove_net\",\"name\":\"y\"}"));
  });
  expect_line_error(1, [&] {
    (void)apply_delta(nl, parse_delta(
        "{\"op\":\"add_device\",\"type\":\"warp_core\",\"nets\":[\"a\"]}"));
  });
  // Pin-count mismatch against the catalog.
  expect_line_error(1, [&] {
    (void)apply_delta(nl, parse_delta(
        "{\"op\":\"add_device\",\"type\":\"nmos\",\"nets\":[\"a\"]}"));
  });
  expect_line_error(1, [&] {
    (void)apply_delta(
        nl, parse_delta("{\"op\":\"rename_net\",\"from\":\"a\",\"to\":\"y\"}"));
  });
  // Order matters: line 2 removes what line 1 added, so line 3's re-add of
  // the same name succeeds; then line 4 fails and is reported as line 4.
  expect_line_error(4, [&] {
    (void)apply_delta(nl, parse_delta(
        "{\"op\":\"add_net\",\"name\":\"s\"}\n"
        "{\"op\":\"remove_net\",\"name\":\"s\"}\n"
        "{\"op\":\"add_net\",\"name\":\"s\"}\n"
        "{\"op\":\"remove_net\",\"name\":\"nope\"}\n"));
  });
}

TEST_F(ApplyDeltaTest, AddNetFlagsApply) {
  (void)apply_delta(nl, parse_delta(
      "{\"op\":\"add_net\",\"name\":\"vbias\",\"global\":true}\n"
      "{\"op\":\"add_net\",\"name\":\"out\",\"port\":true}\n"));
  EXPECT_TRUE(nl.is_global(*nl.find_net("vbias")));
  EXPECT_TRUE(nl.is_port(*nl.find_net("out")));
  nl.validate();
}

}  // namespace
}  // namespace subg
