// Patched-session vs cold-rebuild equivalence — the HostSession invariant.
//
// The contract (session/session.hpp): after apply(), a session is
// indistinguishable from HostSession::build over the edited netlist. Not
// "same matches" — byte-identical serialized reports, in both cores, at
// every jobs value, no matter how the label cache was warmed before the
// patch. These tests drive that claim with 100+ seeded random delta
// scripts over the Fig-5-shaped generator workloads; the eco-gate CI leg
// runs them under ASan/UBSan (ctest -L eco) and the TSan leg picks them
// up through the concurrency label (jobs=8 finds against the shared
// rebased cache).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "report/document.hpp"
#include "session/delta.hpp"
#include "session/session.hpp"

namespace subg {
namespace {

/// Serialized report with the wall-clock members zeroed: byte equality of
/// this string is the equivalence claim.
std::string report_json(MatchReport report) {
  report.phase1_seconds = 0;
  report.phase2_seconds = 0;
  return report::to_json(report).dump();
}

/// A seeded random delta of ~`edits` ops against `base`, applicable by
/// construction: every candidate op is validated against a working copy
/// before it is emitted, so the generator can mix inserts, removals,
/// renames, and scratch nets freely without ever producing a delta the
/// session would reject. mt19937_64 + modulo keeps the scripts identical
/// on every platform (std distributions are not portable).
NetlistDelta random_delta(const Netlist& base, std::uint64_t seed,
                          std::size_t edits) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  Netlist work = base;
  NetlistDelta delta;
  auto emit = [&](DeltaOp op) {
    op.line = delta.ops.size() + 1;
    NetlistDelta one;
    one.ops.push_back(op);
    apply_delta(work, one);
    delta.ops.push_back(std::move(op));
  };
  const std::uint32_t fet_pins =
      work.catalog().type(work.catalog().require("nmos")).pin_count();
  auto random_net = [&] {
    return work.net_name(
        NetId(static_cast<std::uint32_t>(rng() % work.net_count())));
  };
  std::size_t counter = 0;
  const std::string tag = "eco" + std::to_string(seed) + "_";
  for (std::size_t k = 0; k < edits; ++k) {
    const std::uint64_t pick = rng() % 8;
    if (pick < 3) {
      // Insert an inverter driven by a random existing net.
      const std::string in = random_net();
      const std::string out = tag + "w" + std::to_string(counter++);
      for (const char* type : {"pmos", "nmos"}) {
        DeltaOp op;
        op.kind = DeltaOpKind::kAddDevice;
        op.type = type;
        op.name = tag + "m" + std::to_string(counter++);
        op.nets = {out, in};
        while (op.nets.size() < fet_pins) {
          op.nets.emplace_back(type[0] == 'p' ? "vdd" : "gnd");
        }
        emit(std::move(op));
      }
    } else if (pick == 3 && work.device_count() > 8) {
      DeltaOp op;
      op.kind = DeltaOpKind::kRemoveDevice;
      op.name = work.device_name(
          DeviceId(static_cast<std::uint32_t>(rng() % work.device_count())));
      emit(std::move(op));
    } else if (pick == 4) {
      // Rename a non-global net (renaming a rail is legal but would hash a
      // new special label and zero out the workload's matches).
      for (int tries = 0; tries < 8; ++tries) {
        const NetId n(static_cast<std::uint32_t>(rng() % work.net_count()));
        if (work.is_global(n)) continue;
        DeltaOp op;
        op.kind = DeltaOpKind::kRenameNet;
        op.from = work.net_name(n);
        op.to = tag + "rn" + std::to_string(counter++);
        emit(std::move(op));
        break;
      }
    } else if (pick == 5) {
      DeltaOp op;
      op.kind = DeltaOpKind::kRenameDevice;
      op.from = work.device_name(
          DeviceId(static_cast<std::uint32_t>(rng() % work.device_count())));
      op.to = tag + "rd" + std::to_string(counter++);
      emit(std::move(op));
    } else if (pick == 6) {
      DeltaOp op;
      op.kind = DeltaOpKind::kAddNet;
      op.name = tag + "s" + std::to_string(counter++);
      op.port = (rng() & 1) != 0;
      emit(std::move(op));
    } else {
      // Add-then-remove inside one delta: the net must leave no trace.
      const std::string scratch = tag + "x" + std::to_string(counter++);
      DeltaOp add;
      add.kind = DeltaOpKind::kAddNet;
      add.name = scratch;
      emit(std::move(add));
      DeltaOp remove;
      remove.kind = DeltaOpKind::kRemoveNet;
      remove.name = scratch;
      emit(std::move(remove));
    }
  }
  return delta;
}

struct Workload {
  const char* cell;
  gen::Generated g;
};

std::vector<Workload> fig5_workloads() {
  std::vector<Workload> w;
  w.push_back({"nand2", gen::c17()});
  w.push_back({"fulladder", gen::ripple_carry_adder(6)});
  w.push_back({"nand2", gen::logic_soup(120, 5)});
  w.push_back({"dff", gen::register_file(2, 4)});
  return w;
}

TEST(EcoEquivalence, PatchedEqualsColdOver104SeededScripts) {
  std::vector<Workload> workloads = fig5_workloads();
  cells::CellLibrary lib;
  std::vector<Netlist> patterns;
  for (const Workload& w : workloads) patterns.push_back(lib.pattern(w.cell));

  std::size_t instances_total = 0;
  for (std::uint64_t seed = 0; seed < 104; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Workload& w = workloads[seed % workloads.size()];
    const Netlist& pattern = patterns[seed % workloads.size()];
    const NetlistDelta delta = random_delta(w.g.netlist, seed, 1 + seed % 5);

    MatchOptions opts;
    opts.core = (seed % 2) != 0 ? CoreMode::kLegacy : CoreMode::kCsr;
    opts.jobs = (seed % 4) == 2 ? 8 : 1;
    SessionOptions so;
    so.core = opts.core;

    Netlist edited = w.g.netlist;
    apply_delta(edited, delta);
    HostSession cold = HostSession::build(std::move(edited), so);
    const MatchReport cold_report = find_in_session(pattern, cold, opts);

    HostSession patched = HostSession::build(w.g.netlist, so);
    // Warm the cache against the BASE host first — the rebase then has
    // rounds to patch, which is exactly the state cold never sees.
    (void)find_in_session(pattern, patched, opts);
    (void)patched.apply(delta);
    const MatchReport patched_report = find_in_session(pattern, patched, opts);

    EXPECT_EQ(report_json(patched_report), report_json(cold_report));
    instances_total += cold_report.instances.size();
  }
  // Guard against vacuous equivalence: the workloads must actually match.
  EXPECT_GT(instances_total, 100u);
}

TEST(EcoEquivalence, SequentialPatchesTrackColdRebuilds) {
  // One long-lived session, ten successive deltas — after every apply the
  // session must equal a cold build of its CURRENT netlist (errors that
  // compound across patches cannot hide behind a single-edit test).
  gen::Generated g = gen::logic_soup(100, 17);
  cells::CellLibrary lib;
  const Netlist& pattern = lib.pattern("nand2");
  MatchOptions opts;
  opts.jobs = 8;

  HostSession session = HostSession::build(g.netlist);
  (void)find_in_session(pattern, session, opts);
  for (std::uint64_t round = 0; round < 10; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const NetlistDelta delta =
        random_delta(session.netlist(), 1000 + round, 2);
    (void)session.apply(delta);
    HostSession cold = HostSession::build(session.netlist());
    EXPECT_EQ(report_json(find_in_session(pattern, session, opts)),
              report_json(find_in_session(pattern, cold, opts)));
  }
  EXPECT_EQ(session.patch_count(), 10u);
}

TEST(EcoEquivalence, PatchedSessionIsJobsInvariant) {
  // The --jobs contract extended to the rebased cache: parallel lanes over
  // a patched session must reproduce the serial report byte for byte, in
  // both cores.
  gen::Generated g = gen::logic_soup(140, 23);
  cells::CellLibrary lib;
  const Netlist& pattern = lib.pattern("nor2");
  const NetlistDelta delta = random_delta(g.netlist, 77, 4);

  for (const CoreMode core : {CoreMode::kCsr, CoreMode::kLegacy}) {
    SCOPED_TRACE(core == CoreMode::kCsr ? "csr" : "legacy");
    SessionOptions so;
    so.core = core;
    HostSession session = HostSession::build(g.netlist, so);
    MatchOptions opts;
    opts.core = core;
    (void)find_in_session(pattern, session, opts);
    (void)session.apply(delta);
    opts.jobs = 1;
    const std::string serial =
        report_json(find_in_session(pattern, session, opts));
    opts.jobs = 8;
    const std::string parallel =
        report_json(find_in_session(pattern, session, opts));
    EXPECT_EQ(serial, parallel);
  }
}

}  // namespace
}  // namespace subg
