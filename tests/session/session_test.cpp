// HostSession lifecycle: build, configure, apply (atomic or not at all),
// the edge-budget overflow path, spill/compaction accounting, and the
// cumulative session generation counters behind serve `status` and the
// eco.* metrics.
#include <gtest/gtest.h>

#include <string>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "graph/csr_core.hpp"
#include "match/matcher.hpp"
#include "obs/metrics.hpp"
#include "report/document.hpp"
#include "session/delta.hpp"
#include "session/session.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace subg {
namespace {

/// Serialized report with wall-clock zeroed: the byte-identity currency.
std::string report_json(MatchReport report) {
  report.phase1_seconds = 0;
  report.phase2_seconds = 0;
  return report::to_json(report).dump();
}

/// A nand2 delta: one more gate (4 devices) wired off existing soup nets.
const char* kNandDelta =
    "{\"op\":\"add_device\",\"type\":\"pmos\",\"name\":\"eco_p0\","
    "\"nets\":[\"eco_z\",\"pi0\",\"vdd\",\"vdd\"]}\n"
    "{\"op\":\"add_device\",\"type\":\"pmos\",\"name\":\"eco_p1\","
    "\"nets\":[\"eco_z\",\"pi1\",\"vdd\",\"vdd\"]}\n"
    "{\"op\":\"add_device\",\"type\":\"nmos\",\"name\":\"eco_n0\","
    "\"nets\":[\"eco_z\",\"pi0\",\"eco_x\",\"gnd\"]}\n"
    "{\"op\":\"add_device\",\"type\":\"nmos\",\"name\":\"eco_n1\","
    "\"nets\":[\"eco_x\",\"pi1\",\"gnd\",\"gnd\"]}\n";

class SessionTest : public ::testing::Test {
 protected:
  gen::Generated g = gen::logic_soup(60, 99);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
};

TEST_F(SessionTest, BuildOwnsTheWholeBundle) {
  HostSession session = HostSession::build(g.netlist);
  EXPECT_EQ(session.netlist().device_count(), g.netlist.device_count());
  EXPECT_EQ(&session.graph().netlist(), &session.netlist());
  ASSERT_NE(session.core(), nullptr);
  EXPECT_EQ(&session.core()->graph(), &session.graph());
  EXPECT_TRUE(session.core_status().complete());
  EXPECT_EQ(session.patch_count(), 0u);
  EXPECT_EQ(session.spill_bytes(), 0u);
  EXPECT_EQ(session.last_compaction(), 0u);
  EXPECT_EQ(session.totals().patched_devices, 0u);
}

TEST_F(SessionTest, ConfigureWiresTheSharedStructures) {
  HostSession session = HostSession::build(g.netlist);
  MatchOptions opts;
  session.configure(opts);
  EXPECT_EQ(opts.phase1.host_cache, &session.cache());
  EXPECT_EQ(opts.host_core, session.core());
  EXPECT_EQ(opts.core, CoreMode::kCsr);  // untouched when a core exists

  SessionOptions legacy_opts;
  legacy_opts.core = CoreMode::kLegacy;
  HostSession legacy = HostSession::build(g.netlist, legacy_opts);
  EXPECT_EQ(legacy.core(), nullptr);
  EXPECT_TRUE(legacy.core_status().complete());  // skipped, not refused
  MatchOptions lopts;
  legacy.configure(lopts);
  EXPECT_EQ(lopts.host_core, nullptr);
  EXPECT_EQ(lopts.core, CoreMode::kLegacy);
  // Matching still works, and agrees with the csr session byte for byte.
  EXPECT_EQ(report_json(find_in_session(pattern, legacy)),
            report_json(find_in_session(pattern, session)));
}

TEST_F(SessionTest, ApplyPatchesAndTheNextFindSeesIt) {
  HostSession session = HostSession::build(g.netlist);
  const std::size_t before = find_in_session(pattern, session).instances.size();
  const NetlistDelta delta = parse_delta(kNandDelta);
  const ApplyStats stats = session.apply(delta);
  EXPECT_EQ(stats.patched_devices, 4u);
  EXPECT_EQ(stats.patched_nets, 0u);  // implicit nets are not net ops
  EXPECT_EQ(stats.renames, 0u);
  EXPECT_GT(stats.invalidated_labels, 0u);
  EXPECT_EQ(session.patch_count(), 1u);
  EXPECT_EQ(session.netlist().device_count(), g.netlist.device_count() + 4);
  EXPECT_EQ(find_in_session(pattern, session).instances.size(), before + 1);

  // Second patch: rename the gate's output; totals accumulate.
  (void)session.apply(parse_delta(
      "{\"op\":\"rename_net\",\"from\":\"eco_z\",\"to\":\"eco_z2\"}"));
  EXPECT_EQ(session.patch_count(), 2u);
  EXPECT_EQ(session.totals().patched_devices, 4u);
  EXPECT_EQ(session.totals().renames, 1u);
  EXPECT_GE(session.totals().invalidated_labels, stats.invalidated_labels);
}

TEST_F(SessionTest, ApplyIsAtomicOnInapplicableDeltas) {
  HostSession session = HostSession::build(g.netlist);
  const std::string before = report_json(find_in_session(pattern, session));
  // Line 1 applies cleanly; line 2 is inapplicable — the session must not
  // keep line 1's net.
  try {
    (void)session.apply(parse_delta(
        "{\"op\":\"add_net\",\"name\":\"half\"}\n"
        "{\"op\":\"remove_net\",\"name\":\"ghost\"}\n"));
    FAIL() << "expected the delta to be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("delta line 2"), std::string::npos);
  }
  EXPECT_FALSE(session.netlist().find_net("half").has_value());
  EXPECT_EQ(session.patch_count(), 0u);
  EXPECT_EQ(session.totals().patched_nets, 0u);
  EXPECT_EQ(report_json(find_in_session(pattern, session)), before);
}

TEST_F(SessionTest, InjectedPatchFaultRollsBack) {
  if (!fault::kFaultsEnabled) {
    GTEST_SKIP() << "needs -DSUBG_FAULTS=ON";
  }
  HostSession session = HostSession::build(g.netlist);
  const std::string before = report_json(find_in_session(pattern, session));
  const NetlistDelta delta = parse_delta(kNandDelta);
  ASSERT_TRUE(fault::arm("session.patch", 1));
  EXPECT_THROW((void)session.apply(delta), fault::InjectedFault);
  fault::disarm();
  // Byte-identical to before the faulted attempt...
  EXPECT_EQ(session.patch_count(), 0u);
  EXPECT_EQ(session.netlist().device_count(), g.netlist.device_count());
  EXPECT_EQ(report_json(find_in_session(pattern, session)), before);
  // ...and the SAME delta applies cleanly afterwards — which it could not
  // if the faulted attempt had left 'eco_p0' and friends behind.
  const ApplyStats stats = session.apply(delta);
  EXPECT_EQ(stats.patched_devices, 4u);
  EXPECT_EQ(session.patch_count(), 1u);
}

TEST_F(SessionTest, EdgeBudgetOverflowFallsBackToLegacyAndRecovers) {
  // A budget below the host's edge count: the session still builds, the
  // core is refused with a structured status, and matches route legacy.
  CircuitGraph probe(g.netlist);
  const std::size_t edges = CsrCore::edge_count(probe);
  SessionOptions tight;
  tight.max_core_edges = edges - 1;
  HostSession session = HostSession::build(g.netlist, tight);
  EXPECT_EQ(session.core(), nullptr);
  EXPECT_EQ(session.spill_bytes(), 0u);
  EXPECT_FALSE(session.core_status().complete());
  EXPECT_FALSE(session.core_status().reason.empty());
  MatchOptions opts;
  session.configure(opts);
  EXPECT_EQ(opts.core, CoreMode::kLegacy);
  const std::string coreless = report_json(find_in_session(pattern, session));

  // Patches keep working without a core; removing a gate shrinks the host
  // UNDER the budget, so the rebuilt session regains its csr core.
  const std::string victim =
      session.netlist().device_name(DeviceId(0));
  (void)session.apply(parse_delta(
      "{\"op\":\"remove_device\",\"name\":\"" + victim + "\"}"));
  EXPECT_NE(session.core(), nullptr);
  EXPECT_TRUE(session.core_status().complete());

  // And the other direction: a fitting host patched PAST the budget drops
  // the core instead of corrupting it.
  SessionOptions exact;
  exact.max_core_edges = edges;
  HostSession fits = HostSession::build(g.netlist, exact);
  ASSERT_NE(fits.core(), nullptr);
  (void)fits.apply(parse_delta(kNandDelta));
  EXPECT_EQ(fits.core(), nullptr);
  EXPECT_FALSE(fits.core_status().complete());
  // Both overflow shapes agree with each other on the base host.
  HostSession cold = HostSession::build(g.netlist);
  EXPECT_EQ(coreless, report_json(find_in_session(pattern, cold)));
}

TEST_F(SessionTest, CompactionReclaimsSpill) {
  SessionOptions eager;
  eager.spill_compaction_bytes = 0;  // any retained slack compacts
  HostSession session = HostSession::build(g.netlist, eager);
  const std::string victim = session.netlist().device_name(DeviceId(1));
  const ApplyStats stats = session.apply(parse_delta(
      "{\"op\":\"remove_device\",\"name\":\"" + victim + "\"}"));
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(session.spill_bytes(), 0u);
  EXPECT_EQ(session.last_compaction(), 1u);
  EXPECT_EQ(session.totals().compactions, 1u);

  // The default threshold (1 MiB) never triggers on this small host: the
  // spill from one removed gate is retained for the next patch instead.
  HostSession lazy = HostSession::build(g.netlist);
  const ApplyStats lazy_stats = lazy.apply(parse_delta(
      "{\"op\":\"remove_device\",\"name\":\"" + victim + "\"}"));
  EXPECT_EQ(lazy_stats.compactions, 0u);
  EXPECT_GT(lazy.spill_bytes(), 0u);
  EXPECT_EQ(lazy.last_compaction(), 0u);
}

TEST_F(SessionTest, RecordEcoStatsFeedsTheCounters) {
  ApplyStats stats;
  stats.patched_devices = 4;
  stats.patched_nets = 2;
  stats.renames = 1;
  stats.invalidated_labels = 17;
  stats.compactions = 1;
  obs::Metrics metrics;
  record_eco_stats(&metrics, stats);
  record_eco_stats(nullptr, stats);  // null-safe
  const obs::Snapshot snap = metrics.collect();
  EXPECT_EQ(snap.counter("eco.patched_devices"), 4u);
  EXPECT_EQ(snap.counter("eco.patched_nets"), 2u);
  EXPECT_EQ(snap.counter("eco.renames"), 1u);
  EXPECT_EQ(snap.counter("eco.invalidated_labels"), 17u);
  EXPECT_EQ(snap.counter("eco.compactions"), 1u);
}

}  // namespace
}  // namespace subg
