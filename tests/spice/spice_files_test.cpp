// File-level SPICE I/O: read_file, and full write→file→read→compare loops
// on generated circuits.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gemini/gemini.hpp"
#include "gen/generators.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"

namespace subg::spice {
namespace {

class SpiceFilesTest : public ::testing::Test {
 protected:
  std::filesystem::path dir_;

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("subg_spice_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string write_temp(const std::string& name, const std::string& text) {
    std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << text;
    return path;
  }
};

TEST_F(SpiceFilesTest, ReadFileParses) {
  std::string path = write_temp("inv.sp",
                                ".global vdd gnd\n"
                                ".subckt inv a y\n"
                                "mp y a vdd vdd pmos\n"
                                "mn y a gnd gnd nmos\n"
                                ".ends\n");
  Design d = read_file(path);
  EXPECT_TRUE(d.find_module("inv").has_value());
  EXPECT_EQ(d.flattened_device_count("inv"), 2u);
}

TEST_F(SpiceFilesTest, MissingFileThrows) {
  EXPECT_THROW(static_cast<void>(read_file((dir_ / "nope.sp").string())),
               Error);
}

/// Copy without unconnected non-global nets (SPICE cannot express them).
Netlist drop_dangling(const Netlist& in) {
  Netlist out(in.catalog_ptr(), in.name());
  std::vector<NetId> remap(in.net_count());
  for (std::uint32_t n = 0; n < in.net_count(); ++n) {
    const NetId id(n);
    if (in.net_degree(id) == 0 && !in.is_global(id) && !in.is_port(id)) continue;
    NetId nn = out.add_net(in.net_name(id));
    if (in.is_global(id)) out.mark_global(nn);
    if (in.is_port(id)) out.mark_port(nn);
    remap[n] = nn;
  }
  for (std::uint32_t d = 0; d < in.device_count(); ++d) {
    const DeviceId id(d);
    std::vector<NetId> pins;
    for (NetId pn : in.device_pins(id)) pins.push_back(remap[pn.index()]);
    out.add_device(in.device_type(id), pins, in.device_name(id));
  }
  return out;
}

TEST_F(SpiceFilesTest, GeneratedCircuitsRoundTripThroughFiles) {
  struct Case {
    const char* name;
    gen::Generated g;
  };
  std::vector<Case> cases;
  cases.push_back({"rca4", gen::ripple_carry_adder(4)});
  cases.push_back({"c17", gen::c17()});
  cases.push_back({"soup", gen::logic_soup(100, 17)});
  cases.push_back({"ks4", gen::kogge_stone_adder(4)});

  for (Case& c : cases) {
    std::string path = write_temp(std::string(c.name) + ".sp",
                                  write_string(c.g.netlist));
    Design d = read_file(path);
    Netlist back = d.flatten("main");
    CompareResult cmp = compare_netlists(drop_dangling(c.g.netlist), back);
    EXPECT_TRUE(cmp.isomorphic) << c.name << ": " << cmp.reason;
  }
}

TEST_F(SpiceFilesTest, LargeDeckParsePerformanceSanity) {
  // 20k-device deck parses in bounded time and round-trips counts.
  gen::Generated g = gen::logic_soup(2000, 23);
  std::string path = write_temp("big.sp", write_string(g.netlist));
  Design d = read_file(path);
  Netlist back = d.flatten("main");
  EXPECT_EQ(back.device_count(), g.netlist.device_count());
  // SPICE cannot express unconnected nets (e.g. never-picked primary
  // inputs); everything that appears on a card must survive.
  std::size_t dangling = 0;
  for (std::uint32_t n = 0; n < g.netlist.net_count(); ++n) {
    const NetId id(n);
    if (g.netlist.net_degree(id) == 0 && !g.netlist.is_global(id)) ++dangling;
  }
  EXPECT_EQ(back.net_count(), g.netlist.net_count() - dangling);
}

}  // namespace
}  // namespace subg::spice
