#include <gtest/gtest.h>

#include "gemini/gemini.hpp"
#include "match/matcher.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"

namespace subg::spice {
namespace {

constexpr const char* kInverterDeck = R"(
* a CMOS inverter pattern
.global vdd gnd
.subckt inv a y
mp1 y a vdd vdd pmos W=2u L=0.1u
mn1 y a gnd gnd nmos W=1u L=0.1u
.ends inv

* main circuit: two inverters back to back
x0 in mid inv
x1 mid out inv
.end
)";

TEST(Spice, ParsesHierarchyAndGlobals) {
  Design d = read_string(kInverterDeck);
  ASSERT_TRUE(d.find_module("inv").has_value());
  ASSERT_TRUE(d.find_module("main").has_value());
  EXPECT_TRUE(d.is_global_name("vdd"));
  EXPECT_TRUE(d.is_global_name("gnd"));
  EXPECT_EQ(d.flattened_device_count("main"), 4u);

  Netlist flat = d.flatten("main");
  flat.validate();
  EXPECT_EQ(flat.device_count(), 4u);
  EXPECT_TRUE(flat.find_net("mid").has_value());
  EXPECT_TRUE(flat.is_global(*flat.find_net("vdd")));
  // Pattern from the subckt: ports marked.
  Netlist pattern = d.flatten("inv");
  ASSERT_EQ(pattern.ports().size(), 2u);
  EXPECT_EQ(pattern.net_name(pattern.ports()[0]), "a");
}

TEST(Spice, EndToEndMatchFromDecks) {
  Design d = read_string(kInverterDeck);
  Netlist pattern = d.flatten("inv");
  Netlist host = d.flatten("main");
  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 2u);
}

TEST(Spice, ContinuationAndComments) {
  const char* deck = R"(
* leading comment
m1 drain gate
+ source bulk
+ nmos W=1u $ trailing comment
; another comment style
.end
)";
  Design d = read_string(deck);
  Netlist flat = d.flatten("main");
  EXPECT_EQ(flat.device_count(), 1u);
  DeviceId dev(0);
  EXPECT_EQ(flat.device_type_info(dev).name, "nmos");
  EXPECT_EQ(flat.net_name(flat.device_pins(dev)[0]), "drain");
  EXPECT_EQ(flat.net_name(flat.device_pins(dev)[3]), "bulk");
}

TEST(Spice, CaseInsensitive) {
  const char* deck = R"(
.GLOBAL VDD
M1 Y A VDD VDD PMOS
.END
)";
  Netlist flat = read_flat(deck);
  EXPECT_EQ(flat.device_count(), 1u);
  EXPECT_TRUE(flat.find_net("vdd").has_value());
  EXPECT_TRUE(flat.is_global(*flat.find_net("vdd")));
  EXPECT_EQ(flat.device_type_info(DeviceId(0)).name, "pmos");
}

TEST(Spice, PassiveAndDiodeCards) {
  const char* deck = R"(
r1 a b 10k
c1 b gnd 1p
d1 b gnd dmod
.end
)";
  Netlist flat = read_flat(deck);
  EXPECT_EQ(flat.device_count(), 3u);
  EXPECT_EQ(flat.device_type_info(DeviceId(0)).name, "res");
  EXPECT_EQ(flat.device_type_info(DeviceId(1)).name, "cap");
  EXPECT_EQ(flat.device_type_info(DeviceId(2)).name, "diode");
}

TEST(Spice, MosModelResolution) {
  const char* deck = R"(
m1 d1 g1 s1 b1 nch
m2 d2 g2 s2 b2 pch
m3 d3 g3 s3 b3 nmos
.end
)";
  Netlist flat = read_flat(deck);
  EXPECT_EQ(flat.device_type_info(DeviceId(0)).name, "nmos");
  EXPECT_EQ(flat.device_type_info(DeviceId(1)).name, "pmos");
  EXPECT_EQ(flat.device_type_info(DeviceId(2)).name, "nmos");
}

TEST(Spice, ThreePinCatalog) {
  ReadOptions opts;
  opts.catalog = DeviceCatalog::cmos3();
  const char* deck = "m1 d g s nmos\n.end\n";
  Netlist flat = read_flat(deck, opts);
  EXPECT_EQ(flat.device_count(), 1u);
  EXPECT_EQ(flat.device_pins(DeviceId(0)).size(), 3u);
}

TEST(Spice, ErrorsCarryLineNumbers) {
  EXPECT_THROW(read_string("q1 a b c npn\n"), Error);        // unsupported card
  EXPECT_THROW(read_string("m1 d g s b\n"), Error);          // missing model
  EXPECT_THROW(read_string(".subckt foo a\nm1 d g s b nmos\n"), Error);  // no .ends
  EXPECT_THROW(read_string(".ends\n"), Error);               // stray .ends
  EXPECT_THROW(read_string("x1 a b nosuch\n"), Error);       // unknown target
  try {
    static_cast<void>(read_string("r1 a\n"));
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(Spice, WriterRoundTripIsIsomorphic) {
  Design d = read_string(kInverterDeck);
  Netlist original = d.flatten("main");
  std::string text = write_string(original);
  Netlist reparsed = read_flat(text);
  CompareResult r = compare_netlists(original, reparsed);
  EXPECT_TRUE(r.isomorphic) << r.reason << "\n" << text;
}

TEST(Spice, WriterPreservesMidNameDollarInGlobals) {
  // '$' starts a comment only at a token boundary, so a mid-name '$' is a
  // legal character that must survive write → reparse unchanged — global
  // labels derive from the name, so renaming would break isomorphism.
  Design d = read_string(
      ".global vdd g$nd\n"
      "mp out in vdd vdd pmos\n"
      "mn out in g$nd g$nd nmos\n"
      ".end\n");
  Netlist original = d.flatten("main");
  std::string text = write_string(original);
  EXPECT_NE(text.find("g$nd"), std::string::npos) << text;
  Netlist reparsed = read_flat(text);
  CompareResult r = compare_netlists(original, reparsed);
  EXPECT_TRUE(r.isomorphic) << r.reason << "\n" << text;
}

TEST(Spice, WriterEmitsSubcktForPatterns) {
  Design d = read_string(kInverterDeck);
  Netlist pattern = d.flatten("inv");
  std::string text = write_string(pattern);
  EXPECT_NE(text.find(".subckt inv a y"), std::string::npos);
  EXPECT_NE(text.find(".global"), std::string::npos);
  EXPECT_NE(text.find(".ends"), std::string::npos);

  // And it reads back as an equivalent pattern.
  Design d2 = read_string(text);
  Netlist pattern2 = d2.flatten("inv");
  CompareResult r = compare_netlists(pattern, pattern2);
  EXPECT_TRUE(r.isomorphic) << r.reason;
}

}  // namespace
}  // namespace subg::spice
