// Property tests for the label combiner (util/hash.hpp).
//
// The relabeling function must be (a) commutative over incident edges —
// device pins are visited in arbitrary order, so the edge sum must not
// depend on it — and (b) sensitive to each edge's pin equivalence class:
// the gate pin of a MOSFET must contribute differently from a source/drain
// pin even when the neighbor labels collude. These tests pin both
// properties down over random pin orders and adversarial label pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace subg {
namespace {

struct Edge {
  Label coefficient;
  Label neighbor;
};

Label sum_contributions(const std::vector<Edge>& edges) {
  Label sum = 0;
  for (const Edge& e : edges) {
    sum += edge_contribution(e.coefficient, e.neighbor);
  }
  return sum;
}

TEST(HashProperty, RelabelIsInvariantUnderPinPermutation) {
  SplitMix64 rng(0xC0FFEE);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.below(12);
    std::vector<Edge> edges(n);
    for (Edge& e : edges) {
      // Realistic coefficients: per-(type, class) values.
      e.coefficient = class_coefficient(rng(), rng.below(4));
      e.neighbor = rng();
    }
    const Label old_label = rng();
    const Label reference = relabel(old_label, sum_contributions(edges));

    // Fisher-Yates with the test rng: every order must give the same label.
    for (int shuffle = 0; shuffle < 8; ++shuffle) {
      for (std::size_t i = edges.size(); i > 1; --i) {
        std::swap(edges[i - 1], edges[rng.below(i)]);
      }
      EXPECT_EQ(relabel(old_label, sum_contributions(edges)), reference);
    }
  }
}

TEST(HashProperty, SameClassNeighborSwapIsInvariant) {
  // Two pins of the SAME equivalence class (e.g. a MOSFET's source and
  // drain) share a coefficient, so exchanging their neighbors' labels is a
  // pure permutation and must not change the result.
  SplitMix64 rng(0xBEEF);
  for (int trial = 0; trial < 100; ++trial) {
    const Label coeff = class_coefficient(rng(), 0);
    const Label la = rng(), lb = rng();
    const Label gate = edge_contribution(class_coefficient(rng(), 1),
                                         rng());
    EXPECT_EQ(edge_contribution(coeff, la) + edge_contribution(coeff, lb) + gate,
              edge_contribution(coeff, lb) + edge_contribution(coeff, la) + gate);
  }
}

TEST(HashProperty, CrossClassNeighborSwapIsDetected) {
  // Exchanging the neighbors of two pins in DIFFERENT classes (wiring the
  // gate where the source was) must change the edge sum: that is the whole
  // point of class coefficients.
  SplitMix64 rng(0xDEAD);
  for (int trial = 0; trial < 100; ++trial) {
    const Label type = rng();
    const Label c_sd = class_coefficient(type, 0);    // source/drain class
    const Label c_gate = class_coefficient(type, 1);  // gate class
    const Label la = rng(), lb = rng();
    if (la == lb) continue;
    EXPECT_NE(edge_contribution(c_sd, la) + edge_contribution(c_gate, lb),
              edge_contribution(c_sd, lb) + edge_contribution(c_gate, la));
  }
}

TEST(HashProperty, CrossClassXorDifferentialDoesNotCollide) {
  // Regression: pairing coefficient and neighbor with a bare XOR before
  // mixing made contributions from two different classes equal whenever
  // neighbor2 == neighbor1 ^ (coeff1 ^ coeff2) — a structured collision
  // needing no 64-bit luck. The combiner must resist exactly that
  // differential.
  SplitMix64 rng(0xF00D);
  for (int trial = 0; trial < 200; ++trial) {
    const Label type = rng();
    const Label c1 = class_coefficient(type, 0);
    const Label c2 = class_coefficient(type, 1);
    const Label l1 = rng();
    const Label l2 = l1 ^ (c1 ^ c2);
    EXPECT_NE(edge_contribution(c1, l1), edge_contribution(c2, l2));
    // And the additive differential, for good measure.
    const Label l3 = l1 + (c1 - c2);
    EXPECT_NE(edge_contribution(c1, l1), edge_contribution(c2, l3));
  }
}

TEST(HashProperty, ClassCoefficientsDistinguishClassesAndTypes) {
  SplitMix64 rng(0xCAFE);
  for (int trial = 0; trial < 100; ++trial) {
    const Label ta = rng(), tb = rng();
    EXPECT_NE(class_coefficient(ta, 0), class_coefficient(ta, 1));
    if (ta != tb) EXPECT_NE(class_coefficient(ta, 0), class_coefficient(tb, 0));
  }
}

TEST(HashProperty, HashCombineIsOrderDependent) {
  // hash_combine is for tuples (ordered), unlike the edge sum; it must NOT
  // be commutative or degenerate on equal halves.
  SplitMix64 rng(0x1234);
  for (int trial = 0; trial < 100; ++trial) {
    const Label a = rng(), b = rng();
    if (a == b) continue;
    EXPECT_NE(hash_combine(a, b), hash_combine(b, a));
  }
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashProperty, ReservedNoLabelIsNeverProduced) {
  SplitMix64 rng(0x5678);
  for (int trial = 0; trial < 1000; ++trial) {
    EXPECT_NE(relabel(rng(), rng()), kNoLabel);
    EXPECT_NE(hash_combine(rng(), rng()), kNoLabel);
    EXPECT_NE(degree_label(rng.below(64)), kNoLabel);
  }
  EXPECT_NE(hash_string(""), kNoLabel);
  EXPECT_NE(hash_string("vdd"), kNoLabel);
}

}  // namespace
}  // namespace subg
