// util/json.hpp — the dependency-free JSON writer behind report::Document.
// Golden-file report tests compare bytes, so the properties under test here
// are exactly the ones that make bytes stable: insertion order, in-place
// updates, deterministic number rendering, RFC 8259 escaping.
#include "util/json.hpp"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "util/check.hpp"

namespace subg::json {
namespace {

TEST(JsonValue, ScalarsRenderCompact) {
  EXPECT_EQ(Value().dump(0), "null");
  EXPECT_EQ(Value(true).dump(0), "true");
  EXPECT_EQ(Value(false).dump(0), "false");
  EXPECT_EQ(Value(42).dump(0), "42");
  EXPECT_EQ(Value(static_cast<std::int64_t>(-7)).dump(0), "-7");
  EXPECT_EQ(Value(static_cast<std::uint64_t>(18446744073709551615ULL)).dump(0),
            "18446744073709551615");
  EXPECT_EQ(Value("hi").dump(0), "\"hi\"");
}

TEST(JsonValue, ObjectKeepsInsertionOrderAndUpdatesInPlace) {
  Value v = Value::object();
  v.set("b", 1);
  v.set("a", 2);
  v.set("c", 3);
  v.set("b", 9);  // update must not move "b" to the back
  EXPECT_EQ(v.dump(0), "{\"b\":9,\"a\":2,\"c\":3}");
}

TEST(JsonValue, FindAndErase) {
  Value v = Value::object();
  v.set("x", 1);
  v.set("y", "two");
  ASSERT_NE(v.find("y"), nullptr);
  EXPECT_EQ(v.find("y")->as_string(), "two");
  EXPECT_EQ(v.find("z"), nullptr);
  EXPECT_TRUE(v.erase("x"));
  EXPECT_FALSE(v.erase("x"));
  EXPECT_EQ(v.dump(0), "{\"y\":\"two\"}");
}

TEST(JsonValue, ArraysNest) {
  Value v = Value::array();
  v.push(1);
  Value inner = Value::object();
  inner.set("k", Value::array());
  v.push(std::move(inner));
  EXPECT_EQ(v.dump(0), "[1,{\"k\":[]}]");
}

TEST(JsonValue, PrettyPrintIndents) {
  Value v = Value::object();
  v.set("a", 1);
  Value arr = Value::array();
  arr.push(2);
  v.set("b", std::move(arr));
  EXPECT_EQ(v.dump(2), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonValue, EmptyContainersStayOnOneLine) {
  Value v = Value::object();
  v.set("a", Value::object());
  v.set("b", Value::array());
  EXPECT_EQ(v.dump(2), "{\n  \"a\": {},\n  \"b\": []\n}");
}

TEST(JsonValue, StringEscaping) {
  EXPECT_EQ(Value("a\"b\\c").dump(0), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Value("\n\r\t\b\f").dump(0), "\"\\n\\r\\t\\b\\f\"");
  EXPECT_EQ(Value(std::string("\x01\x1f")).dump(0), "\"\\u0001\\u001f\"");
  // UTF-8 passes through byte-for-byte.
  EXPECT_EQ(Value("π").dump(0), "\"π\"");
}

TEST(JsonValue, DoubleRendering) {
  // Integral doubles render as integers for cross-compiler stability.
  EXPECT_EQ(Value(3.0).dump(0), "3");
  EXPECT_EQ(Value(-0.0).dump(0), "0");
  EXPECT_EQ(Value(0.5).dump(0), "0.5");
  // Non-finite values have no JSON representation.
  EXPECT_EQ(Value(std::numeric_limits<double>::quiet_NaN()).dump(0), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(0), "null");
}

TEST(JsonValue, TypeMismatchThrows) {
  Value scalar(1);
  EXPECT_THROW(scalar.set("k", 1), subg::Error);
  EXPECT_THROW(scalar.push(1), subg::Error);
  EXPECT_THROW((void)scalar.as_string(), subg::Error);
  EXPECT_THROW((void)Value("s").as_double(), subg::Error);
}

TEST(JsonValue, MutableViewsSupportNormalization) {
  // The golden tests zero volatile members through members()/elements();
  // make sure that rewrites what write() emits.
  Value v = Value::object();
  v.set("seconds", 0.123);
  for (auto& [key, value] : v.members()) {
    if (key == "seconds") value = 0;
  }
  EXPECT_EQ(v.dump(0), "{\"seconds\":0}");
}

}  // namespace
}  // namespace subg::json
