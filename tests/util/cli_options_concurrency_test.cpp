// Thread-safety tests for the CLI front-end helpers (ctest label:
// concurrency; the TSan CI job runs this). The warn-once latch used to be a
// function-local `static bool` written without synchronization — racy when
// sweeps resolve tops from worker lanes — and is now an atomic exchange.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/cli_options.hpp"

namespace subg::cli {
namespace {

TEST(PositionalTopWarning, ClaimedExactlyOnceAcrossThreads) {
  // Modest thread/round counts and a yielding start barrier: the suite runs
  // under TSan on single-core CI boxes, where a hard spin would serialize
  // every thread through the scheduler at instrumented-load speed.
  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    reset_positional_top_warning_for_test();
    std::atomic<int> claims{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        if (claim_positional_top_warning()) {
          claims.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(claims.load(), 1) << "round " << round;
  }
}

TEST(PositionalTopWarning, SecondClaimInSameThreadFails) {
  reset_positional_top_warning_for_test();
  EXPECT_TRUE(claim_positional_top_warning());
  EXPECT_FALSE(claim_positional_top_warning());
}

TEST(ParseArgs, ConcurrentParsesAreIndependent) {
  // parse_args owns no shared state besides the latch; hammer it from many
  // threads so TSan can prove that.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&failures, t] {
      for (int i = 0; i < 200; ++i) {
        const ParsedArgs parsed = parse_args(
            {"--jobs=" + std::to_string(t + 1), "--fail-on=warn", "--lint",
             "host.sp"});
        if (!parsed.ok() || parsed.options.jobs != static_cast<std::size_t>(t + 1) ||
            parsed.options.fail_on != FailOn::kWarn || !parsed.options.lint ||
            parsed.positionals.size() != 1) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace subg::cli
