// ThreadPool unit tests: coverage, nesting, exception transport, and the
// serial fast path. Scheduling is nondeterministic, so every assertion is
// about scheduling-independent facts (each index runs exactly once, sums
// match, errors surface).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace subg {
namespace {

TEST(ThreadPool, DefaultJobsIsPositive) {
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  bool same_thread = true;
  pool.parallel_for(100, 8, [&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ChunksRespectGrainAndBounds) {
  ThreadPool pool(3);
  std::atomic<std::size_t> covered{0};
  std::atomic<bool> bad_chunk{false};
  pool.parallel_for(1000, 64, [&](std::size_t begin, std::size_t end) {
    if (end <= begin || end - begin > 64 || end > 1000) bad_chunk = true;
    covered.fetch_add(end - begin);
  });
  EXPECT_FALSE(bad_chunk.load());
  EXPECT_EQ(covered.load(), 1000u);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // extract runs per-cell matches on the pool and each match parallelizes
  // its candidate sweep on the SAME pool; the nested call must not
  // deadlock and must cover everything.
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8, kInner = 500;
  std::atomic<std::size_t> total{0};
  pool.parallel_for(kOuter, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      pool.parallel_for(kInner, 16, [&](std::size_t ib, std::size_t ie) {
        total.fetch_add(ie - ib, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000, 1,
                        [&](std::size_t begin, std::size_t) {
                          if (begin == 437) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain fully usable after a failed loop.
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(256, 4, [&](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 256u);
}

TEST(ThreadPool, ConcurrentCallersShareOnePool) {
  // Two external threads issuing parallel_for on the same pool (the shape
  // of an extract tier: each cell match is a caller).
  ThreadPool pool(4);
  std::atomic<std::size_t> a{0}, b{0};
  std::thread t1([&] {
    for (int round = 0; round < 20; ++round) {
      pool.parallel_for(300, 8, [&](std::size_t begin, std::size_t end) {
        a.fetch_add(end - begin, std::memory_order_relaxed);
      });
    }
  });
  std::thread t2([&] {
    for (int round = 0; round < 20; ++round) {
      pool.parallel_for(300, 8, [&](std::size_t begin, std::size_t end) {
        b.fetch_add(end - begin, std::memory_order_relaxed);
      });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 20u * 300u);
  EXPECT_EQ(b.load(), 20u * 300u);
}

TEST(ThreadPool, EmptyAndTinyLoops) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(1, 8, [&](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 1u);
}

}  // namespace
}  // namespace subg
