#include <gtest/gtest.h>

#include <set>

#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace subg {
namespace {

TEST(SplitMix64, DeterministicAcrossInstances) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, BelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(SplitMix64, BelowCoversRange) {
  SplitMix64 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Hash, StringHashNonZeroAndStable) {
  EXPECT_NE(hash_string("nmos"), kNoLabel);
  EXPECT_EQ(hash_string("nmos"), hash_string("nmos"));
  EXPECT_NE(hash_string("nmos"), hash_string("pmos"));
  EXPECT_NE(hash_string(""), kNoLabel);
}

TEST(Hash, DegreeLabelsDistinct) {
  std::set<Label> labels;
  for (std::size_t d = 0; d < 100; ++d) labels.insert(degree_label(d));
  EXPECT_EQ(labels.size(), 100u);
}

TEST(Hash, ClassCoefficientsDependOnTypeAndClass) {
  Label t1 = hash_string("nmos"), t2 = hash_string("pmos");
  EXPECT_NE(class_coefficient(t1, 0), class_coefficient(t1, 1));
  EXPECT_NE(class_coefficient(t1, 0), class_coefficient(t2, 0));
}

TEST(Hash, EdgeContributionCommutativeSum) {
  // The relabeling sum must not depend on neighbor order.
  Label c1 = class_coefficient(hash_string("nmos"), 0);
  Label c2 = class_coefficient(hash_string("nmos"), 1);
  Label l1 = hash_string("x"), l2 = hash_string("y");
  Label sum_ab = edge_contribution(c1, l1) + edge_contribution(c2, l2);
  Label sum_ba = edge_contribution(c2, l2) + edge_contribution(c1, l1);
  EXPECT_EQ(sum_ab, sum_ba);
}

TEST(Hash, RelabelNeverReturnsNoLabel) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_NE(relabel(i, splitmix64_mix(i)), kNoLabel);
  }
}

TEST(Strings, SplitWs) {
  auto parts = split_ws("  a bb\tccc \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "bb");
  EXPECT_EQ(parts[2], "ccc");
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, SplitChar) {
  auto parts = split_char("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("AbC"), "ABC");
  EXPECT_TRUE(equals_icase("VDD", "vdd"));
  EXPECT_FALSE(equals_icase("vdd", "vd"));
  EXPECT_TRUE(starts_with_icase(".SUBCKT inv", ".subckt"));
  EXPECT_FALSE(starts_with_icase(".SUB", ".subckt"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, Formatting) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(-1234), "-1,234");
  EXPECT_EQ(with_commas(999), "999");
}

}  // namespace
}  // namespace subg
