// Budget / CancelToken / RunStatus edge cases.
//
// The serve daemon maps these semantics straight onto wire responses
// (deadline_expired, cancelled), so the edges — a budget already expired at
// construction, a zero-second timeout, cancellation racing a deadline, and
// the escalate/merge ordering of RunStatus — are contract, not trivia.
#include <gtest/gtest.h>

#include "match/matcher.hpp"
#include "match/phase2.hpp"
#include "util/budget.hpp"

#include "../match/test_circuits.hpp"

namespace subg {
namespace {

TEST(Budget, DefaultIsUnlimited) {
  Budget b;
  EXPECT_FALSE(b.has_deadline());
  EXPECT_FALSE(b.limited());
  RunOutcome why = RunOutcome::kComplete;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(b.interrupted(&why));
  EXPECT_EQ(why, RunOutcome::kComplete);
}

TEST(Budget, ZeroTimeoutExpiresAtFirstPoll) {
  // Budget::after(0) has its deadline in the past (or exactly now) by the
  // time anyone polls; the very first interrupted() call must say so — a
  // zero-second sweep that reports kComplete would be a silent truncation.
  Budget b = Budget::after(0.0);
  EXPECT_TRUE(b.has_deadline());
  EXPECT_TRUE(b.limited());
  RunOutcome why = RunOutcome::kComplete;
  EXPECT_TRUE(b.interrupted(&why));
  EXPECT_EQ(why, RunOutcome::kDeadlineExceeded);
}

TEST(Budget, NegativeTimeoutExpiresAtFirstPoll) {
  Budget b = Budget::after(-5.0);
  RunOutcome why = RunOutcome::kComplete;
  EXPECT_TRUE(b.interrupted(&why));
  EXPECT_EQ(why, RunOutcome::kDeadlineExceeded);
}

TEST(Budget, ExpiryLatches) {
  // Deadlines never un-expire: every poll after the first expired one must
  // agree, including the strided polls that skip the clock read.
  Budget b = Budget::after(0.0);
  ASSERT_TRUE(b.interrupted());
  for (int i = 0; i < 200; ++i) {
    RunOutcome why = RunOutcome::kComplete;
    EXPECT_TRUE(b.interrupted(&why));
    EXPECT_EQ(why, RunOutcome::kDeadlineExceeded);
  }
}

TEST(Budget, StridedPollingStillCatchesExpiry) {
  // The clock is sampled only every kStride polls. Arm a deadline that
  // expires immediately but poll a fresh *copy* first so the stride counter
  // is mid-cycle; expiry must still surface within one stride.
  Budget b = Budget::after(3600.0);  // far future: polls return false
  for (int i = 0; i < 17; ++i) ASSERT_FALSE(b.interrupted());
  b.set_deadline_after(0.0);  // now in the past
  bool caught = false;
  for (int i = 0; i < 65 && !caught; ++i) caught = b.interrupted();
  EXPECT_TRUE(caught);
}

TEST(Budget, CancelTokenAloneLimits) {
  CancelToken token;
  Budget b;
  b.set_cancel_token(&token);
  EXPECT_TRUE(b.limited());
  EXPECT_FALSE(b.has_deadline());
  EXPECT_FALSE(b.interrupted());
  token.request();
  RunOutcome why = RunOutcome::kComplete;
  EXPECT_TRUE(b.interrupted(&why));
  EXPECT_EQ(why, RunOutcome::kCancelled);
  token.reset();
  EXPECT_FALSE(b.interrupted());
}

TEST(Budget, CancellationWinsOverExpiredDeadline) {
  // Both conditions hold; the documented precedence is cancellation.
  CancelToken token;
  token.request();
  Budget b = Budget::after(0.0);
  b.set_cancel_token(&token);
  RunOutcome why = RunOutcome::kComplete;
  EXPECT_TRUE(b.interrupted(&why));
  EXPECT_EQ(why, RunOutcome::kCancelled);
}

TEST(Budget, CopiesShareTokenAndDeadline) {
  CancelToken token;
  Budget a = Budget::after(3600.0);
  a.set_cancel_token(&token);
  Budget b = a;  // a phase receiving the budget by value
  token.request();
  RunOutcome why = RunOutcome::kComplete;
  EXPECT_TRUE(b.interrupted(&why));
  EXPECT_EQ(why, RunOutcome::kCancelled);
}

TEST(RunStatus, EscalateOnlyIncreasesSeverity) {
  RunStatus s;
  EXPECT_TRUE(s.complete());
  s.escalate(RunOutcome::kTruncated, "cap A");
  EXPECT_EQ(s.outcome, RunOutcome::kTruncated);
  EXPECT_EQ(s.reason, "cap A");
  // A later escalation to the SAME level keeps the first reason.
  s.escalate(RunOutcome::kTruncated, "cap B");
  EXPECT_EQ(s.reason, "cap A");
  // De-escalation is a no-op.
  s.escalate(RunOutcome::kComplete, "never");
  EXPECT_EQ(s.outcome, RunOutcome::kTruncated);
  EXPECT_EQ(s.reason, "cap A");
  // Strictly higher severity replaces outcome and reason.
  s.escalate(RunOutcome::kCancelled, "caller cancelled");
  EXPECT_EQ(s.outcome, RunOutcome::kCancelled);
  EXPECT_EQ(s.reason, "caller cancelled");
}

TEST(RunStatus, MergeKeepsWorstAndAccumulatesCounters) {
  RunStatus a;
  a.escalate(RunOutcome::kTruncated, "pass cap");
  a.candidates_skipped = 3;
  a.guesses_abandoned = 1;

  RunStatus b;
  b.escalate(RunOutcome::kDeadlineExceeded, "deadline: phase2");
  b.candidates_skipped = 4;
  b.guesses_abandoned = 2;

  a.merge(b);
  EXPECT_EQ(a.outcome, RunOutcome::kDeadlineExceeded);
  EXPECT_EQ(a.reason, "deadline: phase2");
  EXPECT_EQ(a.candidates_skipped, 7u);
  EXPECT_EQ(a.guesses_abandoned, 3u);

  // Merging a milder status changes counters only.
  RunStatus c;
  c.escalate(RunOutcome::kTruncated, "milder");
  c.candidates_skipped = 5;
  a.merge(c);
  EXPECT_EQ(a.outcome, RunOutcome::kDeadlineExceeded);
  EXPECT_EQ(a.reason, "deadline: phase2");
  EXPECT_EQ(a.candidates_skipped, 12u);
}

TEST(RunStatus, MergeOrderIndependentForOutcome) {
  RunStatus x, y;
  x.escalate(RunOutcome::kCancelled, "cancel");
  y.escalate(RunOutcome::kTruncated, "cap");
  RunStatus xy = x;
  xy.merge(y);
  RunStatus yx = y;
  yx.merge(x);
  EXPECT_EQ(xy.outcome, yx.outcome);
  EXPECT_EQ(xy.outcome, RunOutcome::kCancelled);
}

// ---------------------------------------------------------------------------
// Cancellation observed by the matcher itself.

struct NandFixture {
  test::Cmos3 c;
  Netlist pattern = c.nand2_pattern(/*global_rails=*/true);
  Netlist host = c.netlist("host");

  NandFixture() {
    NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
    host.mark_global(vdd);
    host.mark_global(gnd);
    NetId prev = host.add_net("pi");
    for (int i = 0; i < 4; ++i) {
      NetId other = host.add_net("b" + std::to_string(i));
      NetId y = host.add_net("y" + std::to_string(i));
      c.nand2(host, prev, other, y, vdd, gnd);
      prev = y;
    }
  }
};

TEST(BudgetMatcher, PreArmedCancelYieldsCancelledOutcome) {
  // A token requested before find_all(): the first budget poll (Phase I)
  // observes it, the run reports kCancelled, and no instance is invented.
  NandFixture f;
  CancelToken token;
  token.request();
  MatchOptions opts;
  opts.budget.set_cancel_token(&token);
  MatchReport report = SubgraphMatcher(f.pattern, f.host, opts).find_all();
  EXPECT_EQ(report.status.outcome, RunOutcome::kCancelled);
  EXPECT_FALSE(report.status.complete());
  EXPECT_FALSE(report.status.reason.empty());
}

TEST(BudgetMatcher, CancelDuringPhase2IsReported) {
  // Drive Phase II directly with a cancelled budget: Phase I's candidates
  // are computed first (un-governed), so the cancellation is observed by
  // the verifier itself — the phase the serve daemon spends its time in.
  NandFixture f;
  CircuitGraph pattern(f.pattern);
  CircuitGraph host(f.host);
  Phase1Result p1 = run_phase1(pattern, host);
  ASSERT_FALSE(p1.candidates.empty());

  CancelToken token;
  token.request();
  Phase2Options opts;
  opts.budget.set_cancel_token(&token);
  Phase2Verifier verifier(pattern, host, opts);
  ASSERT_TRUE(verifier.globals_resolved());
  EXPECT_EQ(verifier.verify(p1.key, p1.candidates.front()), std::nullopt);
  EXPECT_EQ(verifier.status().outcome, RunOutcome::kCancelled);
}

TEST(BudgetMatcher, UncancelledRunStaysComplete) {
  // Control: the same fixture with a token that is never requested matches
  // all four gates and reports kComplete — limited() alone must not taint
  // the outcome.
  NandFixture f;
  CancelToken token;
  MatchOptions opts;
  opts.budget.set_cancel_token(&token);
  MatchReport report = SubgraphMatcher(f.pattern, f.host, opts).find_all();
  EXPECT_TRUE(report.status.complete());
  EXPECT_EQ(report.count(), 4u);
}

}  // namespace
}  // namespace subg
