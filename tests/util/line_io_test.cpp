// util/line_io.hpp — poll(2)-driven line framing over real pipes.
//
// The serve loop's liveness depends on three properties tested here: an
// oversized line is discarded exactly to its newline (framing survives), a
// blocked read wakes up when the interrupt flag flips (drain on SIGTERM),
// and a final unterminated line is still delivered before EOF.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>

#include "util/line_io.hpp"

namespace subg {
namespace {

/// A pipe whose write end the test drives; both ends closed on destruction.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(pipe(fds), 0); }
  ~Pipe() {
    close_write();
    if (fds[0] >= 0) close(fds[0]);
  }
  void close_write() {
    if (fds[1] >= 0) {
      close(fds[1]);
      fds[1] = -1;
    }
  }
  [[nodiscard]] int read_fd() const { return fds[0]; }
  void feed(std::string_view bytes) {
    ASSERT_EQ(write(fds[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
  }
};

TEST(LineIo, ReadsNewlineFramedLines) {
  Pipe p;
  p.feed("first\nsecond\n\nfourth\n");
  p.close_write();
  LineReader reader(p.read_fd(), 1024);
  std::string line;
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "first");
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "second");
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "");  // blank lines are real (keepalive) frames
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "fourth");
  EXPECT_EQ(reader.read_line(&line), LineReader::Status::kEof);
}

TEST(LineIo, FinalUnterminatedLineIsDeliveredBeforeEof) {
  Pipe p;
  p.feed("complete\ntrailing");
  p.close_write();
  LineReader reader(p.read_fd(), 1024);
  std::string line;
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "complete");
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "trailing");
  EXPECT_EQ(reader.read_line(&line), LineReader::Status::kEof);
}

TEST(LineIo, OversizedLinePreservesFraming) {
  // A line beyond the bound reports kOversized, and the NEXT read returns
  // the following line intact — the long line was consumed to its newline,
  // not left to corrupt the stream.
  Pipe p;
  const std::string big(100, 'x');
  p.feed(big + "\nafter\n");
  p.close_write();
  LineReader reader(p.read_fd(), /*max_line_bytes=*/16);
  std::string line;
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kOversized);
  EXPECT_EQ(reader.last_line_bytes(), big.size());
  EXPECT_LE(line.size(), 16u);  // truncated prefix only
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "after");
  EXPECT_EQ(reader.read_line(&line), LineReader::Status::kEof);
}

TEST(LineIo, OversizedSpanningManyReadsIsStillOneFrame) {
  // The long line arrives in chunks with the terminator last; the reader
  // must keep discarding across fills and resynchronize at the newline.
  Pipe p;
  LineReader reader(p.read_fd(), /*max_line_bytes=*/8);
  std::thread writer([&] {
    for (int i = 0; i < 10; ++i) p.feed(std::string(64, 'y'));
    p.feed("\nnext\n");
    p.close_write();
  });
  std::string line;
  EXPECT_EQ(reader.read_line(&line), LineReader::Status::kOversized);
  EXPECT_EQ(reader.last_line_bytes(), 640u);
  EXPECT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "next");
  writer.join();
}

TEST(LineIo, ExactlyMaxBytesIsNotOversized) {
  Pipe p;
  p.feed("12345678\n");
  p.close_write();
  LineReader reader(p.read_fd(), /*max_line_bytes=*/8);
  std::string line;
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "12345678");
}

TEST(LineIo, InterruptFlagWakesABlockedRead) {
  Pipe p;  // nothing ever written: read_line would block forever
  LineReader reader(p.read_fd(), 1024);
  std::atomic<bool> stop{false};
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    stop.store(true);
  });
  std::string line;
  EXPECT_EQ(reader.read_line(&line, &stop, /*poll_interval_ms=*/5),
            LineReader::Status::kInterrupted);
  waker.join();
}

TEST(LineIo, InterruptDoesNotEatBufferedLines) {
  // A line already in the reader's buffer must be returned even when the
  // flag is up — drain means "answer what arrived", not "drop it". (Data
  // still in the pipe IS subject to the interrupt; only buffered bytes are
  // owed.) Both lines land in the buffer on the first 64K fill.
  Pipe p;
  p.feed("first\nqueued\n");
  std::atomic<bool> stop{false};
  LineReader reader(p.read_fd(), 1024);
  std::string line;
  ASSERT_EQ(reader.read_line(&line, &stop, 5), LineReader::Status::kLine);
  ASSERT_EQ(line, "first");
  stop.store(true);
  EXPECT_EQ(reader.read_line(&line, &stop, 5), LineReader::Status::kLine);
  EXPECT_EQ(line, "queued");
}

TEST(LineIo, WriteLineFramesAndRoundTrips) {
  Pipe p;
  ASSERT_TRUE(write_line(p.fds[1], "hello frame"));
  ASSERT_TRUE(write_line(p.fds[1], ""));
  p.close_write();
  LineReader reader(p.read_fd(), 1024);
  std::string line;
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "hello frame");
  ASSERT_EQ(reader.read_line(&line), LineReader::Status::kLine);
  EXPECT_EQ(line, "");
  EXPECT_EQ(reader.read_line(&line), LineReader::Status::kEof);
}

TEST(LineIo, WriteLineToClosedReaderFailsWithoutSignal) {
  // SIGPIPE is ignored process-wide here (as the serve daemon does); the
  // write must report failure instead of killing the process.
  signal(SIGPIPE, SIG_IGN);
  Pipe p;
  close(p.fds[0]);
  p.fds[0] = -1;
  EXPECT_FALSE(write_line(p.fds[1], "into the void"));
}

}  // namespace
}  // namespace subg
