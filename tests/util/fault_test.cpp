// util/fault.hpp — deterministic fault injection.
//
// The arming API and the hit() semantics are always compiled (only the
// SUBG_FAULT_POINT macro is build-gated), so this test drives hit()
// directly and passes in every build flavor. The contract under test is
// what the serve soak leg relies on: exactly one throw per arming, at the
// exact 1-based ordinal, and a loud failure on a typo'd site name.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/fault.hpp"

namespace subg::fault {
namespace {

/// Every test must leave the process disarmed; a leaked arming would make
/// an unrelated test throw.
struct FaultGuard {
  FaultGuard() { disarm(); }
  ~FaultGuard() {
    disarm();
    unsetenv("SUBG_FAULT");
  }
};

TEST(Fault, RegistryIsFixedAndNonEmpty) {
  const std::vector<std::string> names = sites();
  ASSERT_EQ(names.size(), kSiteCount);
  EXPECT_NE(kSiteCount, 0u);
  // The serve status op and the CI matrix both iterate this list; spot
  // check the sites the soak leg depends on.
  EXPECT_NE(std::find(names.begin(), names.end(), "parse.request"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "serve.dispatch"),
            names.end());
}

TEST(Fault, DisarmedHitsAreCountersOnly) {
  FaultGuard guard;
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(hit("phase1"));
  EXPECT_EQ(armed_site(), "");
}

TEST(Fault, ArmRejectsUnknownSiteAndZeroOrdinal) {
  FaultGuard guard;
  EXPECT_FALSE(arm("no.such.site", 1));
  EXPECT_FALSE(arm("phase1", 0));
  EXPECT_EQ(armed_site(), "");
  // A rejected arm must not have half-armed anything.
  EXPECT_NO_THROW(hit("phase1"));
}

TEST(Fault, FiresExactlyOnceAtTheArmedOrdinal) {
  FaultGuard guard;
  ASSERT_TRUE(arm("phase2", 3));
  EXPECT_EQ(armed_site(), "phase2");
  EXPECT_NO_THROW(hit("phase2"));  // 1st
  EXPECT_NO_THROW(hit("phase2"));  // 2nd
  bool threw = false;
  try {
    hit("phase2");  // 3rd: fires
  } catch (const InjectedFault& fault) {
    threw = true;
    EXPECT_EQ(fault.site(), "phase2");
    // InjectedFault derives from Error so existing isolation boundaries
    // contain it; the message names the site.
    EXPECT_NE(std::string(fault.what()).find("phase2"), std::string::npos);
  }
  EXPECT_TRUE(threw);
  // Fired latch: the same arming never throws twice.
  for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(hit("phase2"));
  EXPECT_EQ(armed_site(), "");  // reported as disarmed once fired
}

TEST(Fault, OtherSitesStayInertWhileArmed) {
  FaultGuard guard;
  ASSERT_TRUE(arm("cache", 1));
  EXPECT_NO_THROW(hit("phase1"));
  EXPECT_NO_THROW(hit("parse.netlist"));
  EXPECT_THROW(hit("cache"), InjectedFault);
}

TEST(Fault, RearmingResetsTheCounter) {
  FaultGuard guard;
  ASSERT_TRUE(arm("phase1", 2));
  EXPECT_NO_THROW(hit("phase1"));
  EXPECT_THROW(hit("phase1"), InjectedFault);
  // Re-arm at nth=2: the counter starts over, so one hit is again safe.
  ASSERT_TRUE(arm("phase1", 2));
  EXPECT_NO_THROW(hit("phase1"));
  EXPECT_THROW(hit("phase1"), InjectedFault);
}

TEST(Fault, DisarmStopsAnArmedFault) {
  FaultGuard guard;
  ASSERT_TRUE(arm("serve.dispatch", 1));
  disarm();
  EXPECT_EQ(armed_site(), "");
  EXPECT_NO_THROW(hit("serve.dispatch"));
}

TEST(Fault, ArmFromEnvUnsetIsFalse) {
  FaultGuard guard;
  unsetenv("SUBG_FAULT");
  EXPECT_FALSE(arm_from_env());
  EXPECT_EQ(armed_site(), "");
}

TEST(Fault, ArmFromEnvParsesSiteAndOrdinal) {
  FaultGuard guard;
  setenv("SUBG_FAULT", "phase1:2", 1);
  EXPECT_TRUE(arm_from_env());
  EXPECT_EQ(armed_site(), "phase1");
  EXPECT_NO_THROW(hit("phase1"));
  EXPECT_THROW(hit("phase1"), InjectedFault);
}

TEST(Fault, ArmFromEnvOrdinalDefaultsToOne) {
  FaultGuard guard;
  setenv("SUBG_FAULT", "parse.request", 1);
  EXPECT_TRUE(arm_from_env());
  EXPECT_THROW(hit("parse.request"), InjectedFault);
}

TEST(Fault, ArmFromEnvRejectsGarbageLoudly) {
  // A CI matrix iterating sites must not silently no-op on a typo.
  FaultGuard guard;
  setenv("SUBG_FAULT", "no.such.site:1", 1);
  EXPECT_THROW((void)arm_from_env(), Error);
  setenv("SUBG_FAULT", "phase1:zero", 1);
  EXPECT_THROW((void)arm_from_env(), Error);
  setenv("SUBG_FAULT", "phase1:0", 1);
  EXPECT_THROW((void)arm_from_env(), Error);
  // An empty value is "unset", not an error — shells export it that way.
  setenv("SUBG_FAULT", "", 1);
  EXPECT_FALSE(arm_from_env());
}

}  // namespace
}  // namespace subg::fault
