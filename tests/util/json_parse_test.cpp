// util/json_parse.hpp — the untrusted read side of the serve protocol.
//
// Every branch here is a request a hostile or buggy client can send: the
// parser must return a structured error with a position, never crash, never
// read past the input, and round-trip everything the writer can emit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace subg::json {
namespace {

Value parse_ok(const std::string& text) {
  ParseResult r = parse(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.error << " @" << r.offset;
  return std::move(r.value);
}

void expect_error(const std::string& text) {
  ParseResult r = parse(text);
  EXPECT_FALSE(r.ok()) << "accepted: " << text;
  EXPECT_FALSE(r.error.empty());
  EXPECT_LE(r.offset, text.size());
}

/// Compact re-serialization — the writer is deterministic, so comparing
/// dump(0) output checks both the parsed shape and the round trip.
std::string rt(const std::string& text) { return parse_ok(text).dump(0); }

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_ok("null").kind(), Value::Kind::kNull);
  EXPECT_EQ(rt("true"), "true");
  EXPECT_EQ(rt("false"), "false");
  EXPECT_EQ(rt("42"), "42");
  EXPECT_EQ(rt("-17"), "-17");
  EXPECT_DOUBLE_EQ(parse_ok("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_ok("1e-6").as_double(), 1e-6);
  EXPECT_DOUBLE_EQ(parse_ok("-1.25E+2").as_double(), -125.0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_ok("  \"ws\"  ").as_string(), "ws");
}

TEST(JsonParse, IntegerKinds) {
  EXPECT_EQ(parse_ok("42").kind(), Value::Kind::kUint);
  EXPECT_EQ(parse_ok("42").as_uint(), 42u);
  EXPECT_EQ(parse_ok("-17").kind(), Value::Kind::kInt);
  EXPECT_DOUBLE_EQ(parse_ok("-17").as_double(), -17.0);
}

TEST(JsonParse, HugeIntegerFallsBackToDouble) {
  // Past integer range the value must degrade to double, not overflow.
  Value v = parse_ok("123456789012345678901234567890");
  EXPECT_EQ(v.kind(), Value::Kind::kDouble);
  EXPECT_GT(v.as_double(), 1e29);
  Value n = parse_ok("-123456789012345678901234567890");
  EXPECT_EQ(n.kind(), Value::Kind::kDouble);
  EXPECT_LT(n.as_double(), -1e29);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(parse_ok(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(parse_ok(R"("A")").as_string(), "A");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(parse_ok(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
  // Raw UTF-8 passes through untouched.
  EXPECT_EQ(parse_ok("\"\xc3\xa9\"").as_string(), "\xc3\xa9");
}

TEST(JsonParse, BadStringEscapes) {
  expect_error(R"("\x41")");    // unknown escape
  expect_error(R"("\u12")");    // truncated \u
  expect_error(R"("\ud83d")");  // lone high surrogate
  expect_error(R"("\ude00")");  // lone low surrogate
  expect_error("\"unterminated");
  expect_error("\"ctrl\x01char\"");  // raw control byte inside a string
}

TEST(JsonParse, Containers) {
  Value v = parse_ok(R"({"a": [1, 2, {"b": null}], "c": "d"})");
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_EQ(v.find("c")->as_string(), "d");
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->elements().size(), 3u);
  EXPECT_EQ(a->elements()[1].as_uint(), 2u);
  ASSERT_TRUE(a->elements()[2].is_object());
  EXPECT_EQ(a->elements()[2].find("b")->kind(), Value::Kind::kNull);
  EXPECT_EQ(rt("[]"), "[]");
  EXPECT_EQ(rt("{}"), "{}");
  EXPECT_EQ(rt("[ 1 , 2 ]"), "[1,2]");
}

TEST(JsonParse, DuplicateKeysLastWins) {
  Value v = parse_ok(R"({"k": 1, "k": 2})");
  ASSERT_NE(v.find("k"), nullptr);
  EXPECT_EQ(v.find("k")->as_uint(), 2u);
  EXPECT_EQ(v.members().size(), 1u);
}

TEST(JsonParse, MalformedDocuments) {
  expect_error("");
  expect_error("   ");
  expect_error("{");
  expect_error("[1, 2");
  expect_error("[1 2]");
  expect_error("{\"a\" 1}");
  expect_error("{\"a\": }");
  expect_error("{1: 2}");  // keys must be strings
  expect_error("[1,]");    // trailing comma
  expect_error("nul");     // truncated keyword
  expect_error("+1");      // leading plus is not JSON
  expect_error("01");      // leading zero
  expect_error("1.");      // bare decimal point
  expect_error(".5");      // bare fraction
  expect_error("not json");
}

TEST(JsonParse, TrailingContentIsAnError) {
  // A request line must be exactly one value; a second value smuggled onto
  // the line must fail loudly.
  expect_error("{} {}");
  expect_error("1 2");
  expect_error("null x");
}

TEST(JsonParse, ErrorOffsetsPointIntoTheInput) {
  ParseResult r = parse("[1, 2, x]");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.offset, 7u);
  r = parse("{} trailing");
  ASSERT_FALSE(r.ok());
  EXPECT_GE(r.offset, 2u);
  EXPECT_LE(r.offset, 4u);
}

TEST(JsonParse, DepthIsBounded) {
  // "[[[[..." past max_depth must be refused, not overflow the stack.
  std::string deep(100000, '[');
  EXPECT_FALSE(parse(deep).ok());

  // 8 nested arrays: the scalar inside sits at depth 8, so max_depth=9
  // admits the document and max_depth=8 refuses it.
  std::string ok_doc = "[[[[[[[[1]]]]]]]]";
  EXPECT_TRUE(parse(ok_doc, /*max_depth=*/9).ok());
  EXPECT_FALSE(parse(ok_doc, /*max_depth=*/8).ok());
}

TEST(JsonParse, RoundTripsWriterOutput) {
  Value doc = Value::object();
  doc.set("schema_version", Value(std::int64_t{1}));
  doc.set("name", Value("nand2 \"quoted\" \n tab\t"));
  doc.set("pi", Value(3.141592653589793));
  doc.set("neg", Value(std::int64_t{-7}));
  doc.set("big", Value(std::uint64_t{1} << 63));
  doc.set("flag", Value(true));
  doc.set("nothing", Value());
  Value arr = Value::array();
  for (int i = 0; i < 5; ++i) arr.push(Value(i * i));
  doc.set("squares", std::move(arr));
  Value inner = Value::object();
  inner.set("k", Value("v"));
  doc.set("inner", std::move(inner));

  for (int indent : {0, 2}) {
    const std::string text = doc.dump(indent);
    ParseResult r = parse(text);
    ASSERT_TRUE(r.ok()) << r.error;
    // The writer is deterministic, so dump(parse(dump(v))) == dump(v).
    EXPECT_EQ(r.value.dump(indent), text);
  }
}

}  // namespace
}  // namespace subg::json
