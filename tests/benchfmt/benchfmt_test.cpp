#include <gtest/gtest.h>

#include "benchfmt/benchfmt.hpp"
#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "match/matcher.hpp"
#include "util/check.hpp"

namespace subg::benchfmt {
namespace {

TEST(BenchFmt, ParsesC17) {
  BenchCircuit c = read_string(c17_text());
  EXPECT_EQ(c.inputs.size(), 5u);
  EXPECT_EQ(c.outputs.size(), 2u);
  EXPECT_EQ(c.gates.at("nand2"), 6u);
  EXPECT_EQ(c.transistors.device_count(), 24u);
  // Ports marked for all named I/O.
  EXPECT_EQ(c.transistors.ports().size(), 7u);
  EXPECT_TRUE(c.transistors.is_global(*c.transistors.find_net("vdd")));
}

TEST(BenchFmt, MatcherFindsTheGates) {
  BenchCircuit c = read_string(c17_text());
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
  SubgraphMatcher matcher(pattern, c.transistors);
  EXPECT_EQ(matcher.find_all().count(), 6u);
}

TEST(BenchFmt, WideFanInDecomposes) {
  const char* text = R"(
INPUT(a) INPUT(b) INPUT(c) INPUT(d) INPUT(e) INPUT(f)
OUTPUT(y)
y = NAND(a, b, c, d, e, f)
)";
  // The single-line INPUTs above are not legal .bench (one per line), so
  // split them:
  BenchCircuit c = read_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\n"
      "OUTPUT(y)\ny = NAND(a, b, c, d, e, f)\n");
  (void)text;
  // 6 inputs → two and2 reductions + a final nand4.
  EXPECT_EQ(c.gates.at("and2"), 2u);
  EXPECT_EQ(c.gates.at("nand4"), 1u);
}

TEST(BenchFmt, XorChainAndPolarity) {
  BenchCircuit c = read_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XNOR(a, b, c)\n");
  EXPECT_EQ(c.gates.at("xor2"), 1u);
  EXPECT_EQ(c.gates.at("xnor2"), 1u);
}

TEST(BenchFmt, DffGetsGlobalClock) {
  BenchCircuit c = read_string(
      "INPUT(d)\nOUTPUT(q)\nq = DFF(d)\n");
  EXPECT_EQ(c.gates.at("dff"), 1u);
  auto clk = c.transistors.find_net("clk");
  ASSERT_TRUE(clk.has_value());
  EXPECT_TRUE(c.transistors.is_global(*clk));
}

TEST(BenchFmt, NotAndBuf) {
  BenchCircuit c = read_string(
      "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = BUF(n)\n");
  EXPECT_EQ(c.gates.at("inv"), 1u);
  EXPECT_EQ(c.gates.at("buf"), 1u);
  EXPECT_EQ(c.transistors.device_count(), 6u);
}

TEST(BenchFmt, Errors) {
  EXPECT_THROW(static_cast<void>(read_string("y = MAJ(a, b, c)\n")), Error);
  EXPECT_THROW(static_cast<void>(read_string("y = NOT(a, b)\n")), Error);
  EXPECT_THROW(static_cast<void>(read_string("y = NAND(a)\n")), Error);
  EXPECT_THROW(static_cast<void>(read_string("= NAND(a, b)\n")), Error);
  EXPECT_THROW(static_cast<void>(read_string("y = NAND a, b\n")), Error);
  try {
    static_cast<void>(read_string("INPUT(a)\ny = FROB(a)\n"));
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchFmt, ExtractionRoundTripsToBench) {
  // transistors → gates (extraction) → .bench text → transistors again;
  // the two transistor netlists must be isomorphic.
  BenchCircuit original = read_string(c17_text());
  cells::CellLibrary lib;
  std::vector<extract::LibraryCell> cells;
  cells.push_back(extract::LibraryCell{"nand2", lib.pattern("nand2")});
  extract::ExtractResult gates =
      extract::extract_gates(original.transistors, cells);
  ASSERT_EQ(gates.report.unextracted_primitives, 0u);

  std::string text = write_string(gates.netlist);
  EXPECT_NE(text.find("= NAND("), std::string::npos);

  BenchCircuit back = read_string(text);
  CompareResult cmp =
      compare_netlists(original.transistors, back.transistors);
  EXPECT_TRUE(cmp.isomorphic) << cmp.reason << "\n" << text;
}

TEST(BenchFmt, WriterRejectsInexpressibleTypes) {
  cells::CellLibrary lib;
  std::vector<extract::LibraryCell> cells;
  cells.push_back(extract::LibraryCell{"aoi21", lib.pattern("aoi21")});
  auto cat = extract::extended_catalog(*DeviceCatalog::cmos(), cells);
  Netlist gates(cat, "g");
  NetId a = gates.add_net("a"), b = gates.add_net("b"), c = gates.add_net("c"),
        y = gates.add_net("y");
  gates.add_device(cat->require("aoi21"), {a, b, c, y});
  EXPECT_THROW(static_cast<void>(write_string(gates)), Error);
}

}  // namespace
}  // namespace subg::benchfmt
