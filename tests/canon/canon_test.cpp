#include <gtest/gtest.h>

#include <set>

#include "canon/canon.hpp"
#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "util/rng.hpp"

namespace subg::canon {
namespace {

/// Renamed/reordered clone (globals keep names).
Netlist scramble(const Netlist& in, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> order(in.device_count());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  Netlist out(in.catalog_ptr(), "scrambled");
  std::vector<NetId> remap(in.net_count());
  for (std::uint32_t n = 0; n < in.net_count(); ++n) {
    const NetId id(n);
    std::string name =
        in.is_global(id) ? in.net_name(id) : "zz" + std::to_string(n);
    NetId nn = out.add_net(std::move(name));
    if (in.is_global(id)) out.mark_global(nn);
    if (in.is_port(id)) out.mark_port(nn);
    remap[n] = nn;
  }
  std::vector<NetId> pins;
  for (std::uint32_t i : order) {
    const DeviceId id(i);
    pins.clear();
    for (NetId pn : in.device_pins(id)) pins.push_back(remap[pn.index()]);
    out.add_device(in.device_type(id), pins);
  }
  return out;
}

TEST(Canon, InvariantUnderRenamingAndReordering) {
  cells::CellLibrary lib;
  for (const std::string& cell : cells::CellLibrary::all_cells()) {
    Netlist original = lib.pattern(cell);
    Netlist copy = scramble(original, 42);
    EXPECT_EQ(fingerprint(original), fingerprint(copy)) << cell;
  }
}

TEST(Canon, AllLibraryCellsHaveDistinctFingerprints) {
  cells::CellLibrary lib;
  std::set<Label> seen;
  for (const std::string& cell : cells::CellLibrary::all_cells()) {
    Netlist pattern = lib.pattern(cell);
    EXPECT_TRUE(seen.insert(fingerprint(pattern)).second) << cell;
  }
}

TEST(Canon, PortMarkingIsPartOfIdentity) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  auto make = [&](bool port) {
    Netlist nl(cat);
    NetId a = nl.add_net("a"), b = nl.add_net("b"), g = nl.add_net("g");
    nl.add_device(nmos, {a, g, b});
    if (port) nl.mark_port(a);
    return nl;
  };
  EXPECT_NE(fingerprint(make(true)), fingerprint(make(false)));
}

TEST(Canon, GlobalNamesArePartOfIdentity) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  auto make = [&](const char* rail) {
    Netlist nl(cat);
    NetId r = nl.add_net(rail), g = nl.add_net("g"), d = nl.add_net("d");
    nl.mark_global(r);
    nl.add_device(nmos, {d, g, r});
    return nl;
  };
  EXPECT_EQ(fingerprint(make("vdd")), fingerprint(make("vdd")));
  EXPECT_NE(fingerprint(make("vdd")), fingerprint(make("vss")));
}

TEST(Canon, DifferentWiringDiffers) {
  gen::Generated a = gen::logic_soup(100, 7);
  gen::Generated b = gen::logic_soup(100, 8);
  EXPECT_NE(fingerprint(a.netlist), fingerprint(b.netlist));
}

TEST(Canon, IsomorphismClassesGroupDuplicates) {
  cells::CellLibrary lib;
  Netlist nand2 = lib.pattern("nand2");
  Netlist nand2_dup = scramble(nand2, 9);
  Netlist nor2 = lib.pattern("nor2");
  Netlist inv = lib.pattern("inv");
  Netlist inv_dup = scramble(inv, 10);
  Netlist inv_dup2 = scramble(inv, 11);

  std::vector<const Netlist*> cells = {&nand2, &nor2,    &inv,
                                       &nand2_dup, &inv_dup, &inv_dup2};
  auto classes = isomorphism_classes(cells);
  ASSERT_EQ(classes.size(), 3u);
  std::map<std::size_t, std::size_t> class_sizes;
  for (const auto& group : classes) ++class_sizes[group.size()];
  EXPECT_EQ(class_sizes[1], 1u);  // nor2 alone
  EXPECT_EQ(class_sizes[2], 1u);  // the two nand2s
  EXPECT_EQ(class_sizes[3], 1u);  // the three inverters
}

TEST(Canon, SymmetricCircuitsStillFingerprintStably) {
  // A ring is fully symmetric (refinement never reaches singletons); the
  // fingerprint must still stabilize and be invariant.
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  auto ring = [&](int n, std::uint64_t salt) {
    Netlist nl(cat);
    NetId gate = nl.add_net("gate");
    std::vector<NetId> nodes;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(nl.add_net("r" + std::to_string(i ^ salt)));
    }
    for (int i = 0; i < n; ++i) {
      nl.add_device(nmos, {nodes[i], gate, nodes[(i + 1) % n]});
    }
    return nl;
  };
  EXPECT_EQ(fingerprint(ring(8, 0)), fingerprint(ring(8, 3)));
  EXPECT_NE(fingerprint(ring(8, 0)), fingerprint(ring(9, 0)));
}

}  // namespace
}  // namespace subg::canon
