// Property tests for the Gemini comparator: isomorphism must hold under
// renaming and re-ordering, and must break under targeted edits.
#include <gtest/gtest.h>

#include "gemini/gemini.hpp"
#include "gen/generators.hpp"
#include "util/rng.hpp"

namespace subg {
namespace {

/// Clone with shuffled device order and renamed nets/devices.
Netlist shuffled_clone(const Netlist& in, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> device_order(in.device_count());
  for (std::uint32_t i = 0; i < device_order.size(); ++i) device_order[i] = i;
  for (std::size_t i = device_order.size(); i > 1; --i) {
    std::swap(device_order[i - 1], device_order[rng.below(i)]);
  }

  Netlist out(in.catalog_ptr(), in.name() + "_shuffled");
  std::vector<NetId> remap(in.net_count());
  for (std::uint32_t n = 0; n < in.net_count(); ++n) {
    const NetId id(n);
    // Globals must keep their names (matched by name); others get renamed.
    std::string name = in.is_global(id) ? in.net_name(id)
                                        : "ren_" + std::to_string(n);
    NetId nn = out.add_net(std::move(name));
    if (in.is_global(id)) out.mark_global(nn);
    remap[n] = nn;
  }
  std::vector<NetId> pins;
  for (std::uint32_t i : device_order) {
    const DeviceId id(i);
    pins.clear();
    for (NetId pn : in.device_pins(id)) pins.push_back(remap[pn.index()]);
    out.add_device(in.device_type(id), pins, "dev_" + std::to_string(i));
  }
  return out;
}

class GeminiProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeminiProperty, ShuffledCloneIsIsomorphic) {
  gen::Generated g = gen::logic_soup(150, GetParam());
  Netlist clone = shuffled_clone(g.netlist, GetParam() ^ 0xF00D);
  CompareResult r = compare_netlists(g.netlist, clone);
  ASSERT_TRUE(r.isomorphic) << r.reason;

  // The returned mapping is a real isomorphism: map each device and check
  // the types line up.
  for (std::uint32_t d = 0; d < g.netlist.device_count(); ++d) {
    const DeviceId a(d);
    const DeviceId b = r.device_map[d];
    EXPECT_EQ(g.netlist.device_type_info(a).name,
              clone.device_type_info(b).name);
  }
}

TEST_P(GeminiProperty, SingleEdgeRewireDetected) {
  gen::Generated g = gen::logic_soup(150, GetParam());
  Netlist clone = shuffled_clone(g.netlist, GetParam() ^ 0xF00D);

  // Corrupt the clone: rebuild once more, rewiring one device pin to a
  // different (non-equivalent) net.
  Xoshiro256 rng(GetParam() * 31 + 7);
  Netlist bad(clone.catalog_ptr(), "bad");
  for (std::uint32_t n = 0; n < clone.net_count(); ++n) {
    const NetId id(n);
    NetId nn = bad.add_net(clone.net_name(id));
    if (clone.is_global(id)) bad.mark_global(nn);
  }
  const std::uint32_t victim =
      static_cast<std::uint32_t>(rng.below(clone.device_count()));
  std::vector<NetId> pins;
  for (std::uint32_t d = 0; d < clone.device_count(); ++d) {
    const DeviceId id(d);
    pins.clear();
    for (NetId pn : clone.device_pins(id)) pins.push_back(NetId(pn.value));
    if (d == victim) {
      // Move pin 0 to a different net.
      NetId other;
      do {
        other = NetId(static_cast<std::uint32_t>(rng.below(clone.net_count())));
      } while (other == pins[0]);
      pins[0] = other;
    }
    bad.add_device(clone.device_type(id), pins, clone.device_name(id));
  }
  CompareResult r = compare_netlists(g.netlist, bad);
  EXPECT_FALSE(r.isomorphic);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeminiProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace subg
