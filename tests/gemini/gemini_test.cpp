#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"

namespace subg {
namespace {

using cells::CellLibrary;

TEST(Gemini, IdenticalNetlistsAreIsomorphic) {
  CellLibrary lib;
  Netlist a = lib.pattern("fulladder");
  Netlist b = lib.pattern("fulladder");
  CompareResult r = compare_netlists(a, b);
  EXPECT_TRUE(r.isomorphic) << r.reason;
  ASSERT_EQ(r.device_map.size(), a.device_count());
  ASSERT_EQ(r.net_map.size(), a.net_count());
}

TEST(Gemini, RenamedNetsStillIsomorphic) {
  // Same structure, different net and device names, different insertion
  // order of devices.
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos"), pmos = cat->require("pmos");

  Netlist a(cat, "a");
  NetId av = a.add_net("vdd"), ag = a.add_net("gnd"), ax = a.add_net("x"),
        ay = a.add_net("y");
  a.mark_global(av);
  a.mark_global(ag);
  a.add_device(pmos, {ay, ax, av}, "p1");
  a.add_device(nmos, {ay, ax, ag}, "n1");

  Netlist b(cat, "b");
  NetId bv = b.add_net("vdd"), bg = b.add_net("gnd"), bin = b.add_net("signal_in"),
        bout = b.add_net("signal_out");
  b.mark_global(bv);
  b.mark_global(bg);
  b.add_device(nmos, {bout, bin, bg}, "puller");   // reversed order
  b.add_device(pmos, {bout, bin, bv}, "pusher");

  CompareResult r = compare_netlists(a, b);
  ASSERT_TRUE(r.isomorphic) << r.reason;
  // p1 corresponds to "pusher".
  EXPECT_EQ(b.device_name(r.device_map[0]), "pusher");
  EXPECT_EQ(b.net_name(r.net_map[ax.index()]), "signal_in");
}

TEST(Gemini, DifferentWiringDetected) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");

  // a: two series transistors; b: two parallel transistors.
  Netlist a(cat);
  NetId a1 = a.add_net("1"), a2 = a.add_net("2"), a3 = a.add_net("3"),
        ag1 = a.add_net("g1"), ag2 = a.add_net("g2");
  a.add_device(nmos, {a1, ag1, a2});
  a.add_device(nmos, {a2, ag2, a3});

  Netlist b(cat);
  NetId b1 = b.add_net("1"), b2 = b.add_net("2");
  NetId bg1 = b.add_net("g1"), bg2 = b.add_net("g2"), b3 = b.add_net("3");
  (void)b3;
  b.add_device(nmos, {b1, bg1, b2});
  b.add_device(nmos, {b1, bg2, b2});

  CompareResult r = compare_netlists(a, b);
  EXPECT_FALSE(r.isomorphic);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Gemini, CountMismatchShortCircuits) {
  CellLibrary lib;
  Netlist a = lib.pattern("inv");
  Netlist b = lib.pattern("nand2");
  CompareResult r = compare_netlists(a, b);
  EXPECT_FALSE(r.isomorphic);
  EXPECT_NE(r.reason.find("device counts differ"), std::string::npos);
}

TEST(Gemini, PinClassMattersGateVsSourceDrain) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  // a: x is the gate; b: x is a source/drain. Same degrees everywhere.
  Netlist a(cat);
  NetId ax = a.add_net("x"), ad = a.add_net("d"), as = a.add_net("s");
  a.add_device(nmos, {ad, ax, as});
  Netlist b(cat);
  NetId bx = b.add_net("x"), bd = b.add_net("d"), bs = b.add_net("s");
  b.add_device(nmos, {bx, bd, bs});
  // Structurally both are one transistor with three distinct nets; they ARE
  // isomorphic (x maps to a source/drain net). Sanity: compare succeeds.
  CompareResult r = compare_netlists(a, b);
  EXPECT_TRUE(r.isomorphic) << r.reason;
}

TEST(Gemini, SymmetricCircuitNeedsIndividuation) {
  // A ring of pass transistors is fully symmetric: refinement alone cannot
  // produce singletons, so the comparison must individuate.
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  auto ring = [&](int n) {
    Netlist nl(cat);
    NetId gate = nl.add_net("gate");
    std::vector<NetId> nodes;
    for (int i = 0; i < n; ++i) nodes.push_back(nl.add_net("r" + std::to_string(i)));
    for (int i = 0; i < n; ++i) {
      nl.add_device(nmos, {nodes[i], gate, nodes[(i + 1) % n]});
    }
    return nl;
  };
  CompareResult r = compare_netlists(ring(8), ring(8));
  ASSERT_TRUE(r.isomorphic) << r.reason;
  EXPECT_GE(r.individuations, 1u);

  CompareResult r2 = compare_netlists(ring(8), ring(4));
  EXPECT_FALSE(r2.isomorphic);
}

TEST(Gemini, GlobalNamesMustAgree) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  auto make = [&](const char* rail) {
    Netlist nl(cat);
    NetId r = nl.add_net(rail), g = nl.add_net("g"), d = nl.add_net("d");
    nl.mark_global(r);
    nl.add_device(nmos, {d, g, r});
    return nl;
  };
  EXPECT_TRUE(compare_netlists(make("vdd"), make("vdd")).isomorphic);
  EXPECT_FALSE(compare_netlists(make("vdd"), make("vcc")).isomorphic);
}

TEST(Gemini, LargeGeneratedCircuitSelfCompare) {
  gen::Generated g1 = gen::logic_soup(300, 7);
  gen::Generated g2 = gen::logic_soup(300, 7);  // same seed → same circuit
  CompareResult r = compare_netlists(g1.netlist, g2.netlist);
  EXPECT_TRUE(r.isomorphic) << r.reason;

  gen::Generated g3 = gen::logic_soup(300, 8);  // different seed
  CompareResult r2 = compare_netlists(g1.netlist, g3.netlist);
  EXPECT_FALSE(r2.isomorphic);
}

}  // namespace
}  // namespace subg
