// The pre-search static analyzer, layer by layer: orbit detection on
// symmetric and asymmetric patterns (including the capped-search path),
// path-label construction on the ring family the degree filter cannot
// split, the side asymmetry (pattern walks exclude ports/specials, host
// walks include them), and each infeasibility-certificate rule firing
// exactly when its dominance check is violated.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../match/test_circuits.hpp"
#include "analyze/analyze.hpp"
#include "graph/circuit_graph.hpp"

namespace subg {
namespace {

using test::Cmos3;

/// Ring of `n` identical pass transistors sharing one gate net.
void add_ring(const Cmos3& c, Netlist& nl, int n, const std::string& prefix) {
  NetId gate = nl.add_net(prefix + "gate");
  std::vector<NetId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(nl.add_net(prefix + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    nl.add_device(c.nmos, {nodes[i], gate, nodes[(i + 1) % n]});
  }
}

Netlist ring_pattern(const Cmos3& c, int n) {
  Netlist nl = c.netlist("ring_p");
  add_ring(c, nl, n, "r");
  nl.mark_port(*nl.find_net("rgate"));
  return nl;
}

/// k parallel transistors, every net a port — maximally symmetric.
Netlist parallel_pattern(const Cmos3& c, int k) {
  Netlist nl = c.netlist("par");
  NetId n1 = nl.add_net("n1"), n2 = nl.add_net("n2"), g = nl.add_net("g");
  for (int i = 0; i < k; ++i) nl.add_device(c.nmos, {n1, g, n2});
  nl.mark_port(n1);
  nl.mark_port(n2);
  nl.mark_port(g);
  return nl;
}

// --- layer 1: orbits ---------------------------------------------------------

TEST(AnalyzeOrbits, ParallelDevicesFoldIntoOneOrbit) {
  Cmos3 c;
  Netlist pattern = parallel_pattern(c, 3);
  CircuitGraph graph(pattern);
  const analyze::Orbits orbits = analyze::find_orbits(graph, pattern);
  EXPECT_TRUE(orbits.complete);
  EXPECT_FALSE(orbits.automorphisms.empty());
  // The three interchangeable devices share one representative.
  EXPECT_EQ(orbits.orbit_of[0], orbits.orbit_of[1]);
  EXPECT_EQ(orbits.orbit_of[1], orbits.orbit_of[2]);
  EXPECT_GE(orbits.nontrivial_orbit_count(), 1u);
  // Every reported permutation really is an automorphism: it permutes
  // devices among devices and fixes no constraint we can check cheaply
  // here beyond totality.
  for (const std::vector<Vertex>& sigma : orbits.automorphisms) {
    ASSERT_EQ(sigma.size(), graph.vertex_count());
    for (Vertex v = 0; v < graph.vertex_count(); ++v) {
      EXPECT_EQ(graph.is_device(sigma[v]), graph.is_device(v));
    }
  }
}

TEST(AnalyzeOrbits, AsymmetricPatternHasOnlyTheIdentity) {
  Cmos3 c;
  // A NAND's series stack orders its inputs: a0 gates the top transistor,
  // so no structural automorphism exists (the Fig 7 canonicality point).
  Netlist pattern = c.netlist("nand2");
  NetId a = pattern.add_net("a"), b = pattern.add_net("b");
  NetId y = pattern.add_net("y");
  NetId vdd = pattern.add_net("vdd"), gnd = pattern.add_net("gnd");
  c.nand2(pattern, a, b, y, vdd, gnd);
  for (NetId n : {a, b, y}) pattern.mark_port(n);
  pattern.mark_global(vdd);
  pattern.mark_global(gnd);
  CircuitGraph graph(pattern);
  const analyze::Orbits orbits = analyze::find_orbits(graph, pattern);
  EXPECT_TRUE(orbits.complete);
  EXPECT_TRUE(orbits.automorphisms.empty());
  EXPECT_EQ(orbits.orbit_count(), graph.vertex_count());
  EXPECT_EQ(orbits.nontrivial_orbit_count(), 0u);
}

TEST(AnalyzeOrbits, CapTruncatesButStaysSound) {
  Cmos3 c;
  // 6 parallel devices have 6! = 720 device automorphisms; a cap of 4
  // truncates the enumeration and must say so.
  Netlist pattern = parallel_pattern(c, 6);
  CircuitGraph graph(pattern);
  analyze::AnalyzeOptions options;
  options.max_automorphisms = 4;
  const analyze::Orbits orbits = analyze::find_orbits(graph, pattern, options);
  EXPECT_FALSE(orbits.complete);
  EXPECT_LE(orbits.automorphisms.size(), 4u);
  // Truncated orbits under-approximate: vertices merged by the subset
  // found are genuinely equivalent, so devices still never mix with nets.
  CircuitGraph check(pattern);
  for (Vertex v = 0; v < check.vertex_count(); ++v) {
    EXPECT_EQ(check.is_device(orbits.orbit_of[v]), check.is_device(v));
  }
}

// --- layer 2: path labels ----------------------------------------------------

TEST(AnalyzePathLabels, SixRingWrapsWhereTwelveRingCannot) {
  Cmos3 c;
  Netlist pattern = ring_pattern(c, 6);
  Netlist host = c.netlist("main");
  add_ring(c, host, 12, "h");
  CircuitGraph pattern_graph(pattern);
  CircuitGraph host_graph(host);
  const analyze::PathLabels p = analyze::build_path_labels(
      pattern_graph, pattern, analyze::Side::kPattern);
  const analyze::PathLabels h = analyze::build_path_labels(
      host_graph, host, analyze::Side::kHost);
  // Every device-to-device pairing is refuted: a closed 12-step walk can
  // wrap the 6-ring but not the 12-ring, so the pattern count through
  // degree-2 nets strictly exceeds the host count.
  for (Vertex s = 0; s < 6; ++s) {
    ASSERT_TRUE(pattern_graph.is_device(s));
    EXPECT_GT(p.count(s, 0), 0u);
    for (Vertex g = 0; g < 12; ++g) {
      ASSERT_TRUE(host_graph.is_device(g));
      EXPECT_GT(p.count(s, 0), h.count(g, 0));
      EXPECT_TRUE(analyze::PathLabels::refutes(p, s, h, g));
    }
  }
}

TEST(AnalyzePathLabels, EqualRingsDoNotRefute) {
  Cmos3 c;
  Netlist pattern = ring_pattern(c, 6);
  Netlist host = c.netlist("main");
  add_ring(c, host, 6, "h");
  const analyze::PathLabels p = analyze::build_path_labels(
      CircuitGraph(pattern), pattern, analyze::Side::kPattern);
  const analyze::PathLabels h = analyze::build_path_labels(
      CircuitGraph(host), host, analyze::Side::kHost);
  for (Vertex s = 0; s < 6; ++s) {
    for (Vertex g = 0; g < 6; ++g) {
      EXPECT_FALSE(analyze::PathLabels::refutes(p, s, h, g));
    }
  }
}

TEST(AnalyzePathLabels, PatternWalksExcludePortNets) {
  Cmos3 c;
  // Every net of the parallel pattern is a port, so no pattern walk is
  // admissible: all counts are zero and nothing can ever be refuted.
  Netlist pattern = parallel_pattern(c, 3);
  const analyze::PathLabels p = analyze::build_path_labels(
      CircuitGraph(pattern), pattern, analyze::Side::kPattern);
  for (std::uint64_t count : p.counts) EXPECT_EQ(count, 0u);
}

TEST(AnalyzePathLabels, HostSideIsAnUpperBoundOfPatternSide) {
  Cmos3 c;
  // Same graph, one ring net marked global: the pattern side must drop the
  // walks through it, the host side keeps them — host >= pattern per
  // vertex per class is exactly the soundness direction.
  Netlist ring = c.netlist("ring");
  add_ring(c, ring, 6, "r");
  ring.mark_port(*ring.find_net("rgate"));
  ring.mark_global(*ring.find_net("r3"));
  CircuitGraph graph(ring);
  const analyze::PathLabels as_pattern = analyze::build_path_labels(
      graph, ring, analyze::Side::kPattern);
  const analyze::PathLabels as_host = analyze::build_path_labels(
      graph, ring, analyze::Side::kHost);
  ASSERT_EQ(as_pattern.counts.size(), as_host.counts.size());
  bool strictly_somewhere = false;
  for (std::size_t i = 0; i < as_pattern.counts.size(); ++i) {
    EXPECT_LE(as_pattern.counts[i], as_host.counts[i]);
    strictly_somewhere |= as_pattern.counts[i] < as_host.counts[i];
  }
  EXPECT_TRUE(strictly_somewhere);
}

// --- layer 3: certificates ---------------------------------------------------

TEST(AnalyzeCertificates, DeviceTypeDeficit) {
  Cmos3 c;
  Netlist pattern = parallel_pattern(c, 3);
  Netlist host = c.netlist("main");
  NetId a = host.add_net("a"), g = host.add_net("g"), b = host.add_net("b");
  host.add_device(c.nmos, {a, g, b});
  const auto cert = analyze::check_feasibility(pattern, host);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->rule, "device_type_deficit");
  EXPECT_EQ(cert->subject, "nmos");
  EXPECT_EQ(cert->pattern_count, 3u);
  EXPECT_EQ(cert->host_count, 1u);
  EXPECT_FALSE(cert->detail.empty());
}

TEST(AnalyzeCertificates, MissingGlobalNet) {
  Cmos3 c;
  Netlist pattern = c.inv_pattern(/*global_rails=*/true);
  // Host has the devices but no net named vdd: globals match by name, so
  // the pattern's vdd connection can never bind.
  Netlist host = c.netlist("main");
  NetId a = host.add_net("a"), y = host.add_net("y");
  NetId up = host.add_net("up"), down = host.add_net("down");
  c.inv(host, a, y, up, down);
  const auto cert = analyze::check_feasibility(pattern, host);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->rule, "missing_global_net");
  EXPECT_TRUE(cert->subject == "vdd" || cert->subject == "gnd");
}

TEST(AnalyzeCertificates, InternalNetDegreeDeficit) {
  Cmos3 c;
  // Pattern: a 3-star on internal net x (degree exactly 3). Host: the same
  // three transistors in a chain — no degree-3 net anywhere.
  Netlist pattern = c.netlist("star");
  NetId x = pattern.add_net("x");
  for (int i = 0; i < 3; ++i) {
    NetId d = pattern.add_net("d" + std::to_string(i));
    NetId g = pattern.add_net("g" + std::to_string(i));
    pattern.add_device(c.nmos, {d, g, x});
    pattern.mark_port(d);
    pattern.mark_port(g);
  }
  Netlist host = c.netlist("main");
  NetId prev = host.add_net("n0");
  for (int i = 0; i < 3; ++i) {
    NetId g = host.add_net("hg" + std::to_string(i));
    NetId next = host.add_net("n" + std::to_string(i + 1));
    host.add_device(c.nmos, {prev, g, next});
    prev = next;
  }
  const auto cert = analyze::check_feasibility(pattern, host);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->rule, "internal_net_degree_deficit");
  EXPECT_EQ(cert->degree, 3u);
  EXPECT_EQ(cert->pattern_count, 1u);
  EXPECT_EQ(cert->host_count, 0u);
}

TEST(AnalyzeCertificates, PortNetDegreeDeficit) {
  Cmos3 c;
  // Pattern: 4 gates share one port net (degree 4, >= suffices for ports).
  // Host: 4 transistors whose nets never exceed degree 2.
  Netlist pattern = parallel_pattern(c, 4);
  Netlist host = c.netlist("main");
  for (int i = 0; i < 4; ++i) {
    const std::string p = "h" + std::to_string(i);
    NetId d = host.add_net(p + "d"), g = host.add_net(p + "g");
    NetId s = host.add_net(p + "s");
    host.add_device(c.nmos, {d, g, s});
  }
  const auto cert = analyze::check_feasibility(pattern, host);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->rule, "port_net_degree_deficit");
  EXPECT_EQ(cert->degree, 4u);
}

TEST(AnalyzeCertificates, FeasiblePairingProvesNothing) {
  Cmos3 c;
  Netlist pattern = c.inv_pattern(/*global_rails=*/false);
  Netlist host = c.netlist("main");
  NetId a = host.add_net("a"), y = host.add_net("y");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  c.inv(host, a, y, vdd, gnd);
  c.nand2(host, y, a, host.add_net("z"), vdd, gnd);
  EXPECT_FALSE(analyze::check_feasibility(pattern, host).has_value());
}

// --- the combined report -----------------------------------------------------

TEST(AnalyzeReport, PatternOnlyAndPairedRuns) {
  Cmos3 c;
  Netlist pattern = ring_pattern(c, 6);
  const analyze::AnalysisReport alone = analyze::analyze(pattern, nullptr);
  EXPECT_EQ(alone.pattern_devices, 6u);
  EXPECT_EQ(alone.pattern_nets, 7u);
  EXPECT_EQ(alone.walk_steps, 12u);
  EXPECT_GE(alone.path_classes, 1u);
  EXPECT_FALSE(alone.host_checked);
  EXPECT_FALSE(alone.infeasible());

  Netlist host = c.netlist("main");
  add_ring(c, host, 12, "h");
  const analyze::AnalysisReport paired = analyze::analyze(pattern, &host);
  EXPECT_TRUE(paired.host_checked);
  // Feasibility is a coarse histogram relaxation: the ring decoy passes it
  // (the refutation is per-candidate, in Phase II's path-label prefilter).
  EXPECT_FALSE(paired.infeasible());

  std::ostringstream text;
  analyze::write_text(paired, text);
  EXPECT_NE(text.str().find("orbit"), std::string::npos);
}

TEST(AnalyzeReport, InfeasiblePairCarriesTheCertificate) {
  Cmos3 c;
  Netlist pattern = c.inv_pattern(/*global_rails=*/false);
  Netlist host = c.netlist("main");
  NetId d = host.add_net("d"), g = host.add_net("g"), s = host.add_net("s");
  host.add_device(c.nmos, {d, g, s});
  const analyze::AnalysisReport report = analyze::analyze(pattern, &host);
  ASSERT_TRUE(report.infeasible());
  EXPECT_EQ(report.certificate->rule, "device_type_deficit");
  EXPECT_EQ(report.certificate->subject, "pmos");
  std::ostringstream text;
  analyze::write_text(report, text);
  EXPECT_NE(text.str().find("device_type_deficit"), std::string::npos);
}

}  // namespace
}  // namespace subg
