// The analyzer as the matcher consumes it: the 12-ring-vs-6-ring decoy A/B
// (path labels refute degree-blind decoys with zero Phase II guesses), the
// fat-ring A/B (backtracking eliminated where the signature filter alone
// cannot), csr/legacy and jobs=1/jobs=8 counter identity for every new
// counter, symmetry-aware exhaustive enumeration, infeasibility
// short-circuits in find and extract, and ECO-patched-session identity for
// the rebased path labels.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "../match/test_circuits.hpp"
#include "analyze/analyze.hpp"
#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "report/document.hpp"
#include "session/delta.hpp"
#include "session/session.hpp"

namespace subg {
namespace {

using test::Cmos3;

/// Ring of `n` pass transistors; `fat` hangs one extra device off ring
/// net 1 (invisible to the degree signature of the OTHER nets, fatal to
/// the match hypothesis — the genuine-backtracking decoy family).
void add_ring(const Cmos3& c, Netlist& nl, int n, const std::string& prefix,
              bool fat = false) {
  NetId gate = nl.add_net(prefix + "gate");
  std::vector<NetId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(nl.add_net(prefix + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    nl.add_device(c.nmos, {nodes[i], gate, nodes[(i + 1) % n]});
  }
  if (fat) {
    NetId qg = nl.add_net(prefix + "qg"), qd = nl.add_net(prefix + "qd");
    nl.add_device(c.nmos, {nodes[1], qg, qd});
  }
}

Netlist ring_pattern(const Cmos3& c, int k) {
  Netlist nl = c.netlist("ring");
  add_ring(c, nl, k, "r");
  nl.mark_port(*nl.find_net("rgate"));
  return nl;
}

/// k parallel transistors, every net a port — maximally symmetric.
Netlist parallel_pattern(const Cmos3& c, int k) {
  Netlist nl = c.netlist("par");
  NetId n1 = nl.add_net("n1"), n2 = nl.add_net("n2"), g = nl.add_net("g");
  for (int i = 0; i < k; ++i) nl.add_device(c.nmos, {n1, g, n2});
  nl.mark_port(n1);
  nl.mark_port(n2);
  nl.mark_port(g);
  return nl;
}

/// `truth` 6-rings plus `decoys` 12-rings: every 12-ring net has degree 2
/// exactly like the pattern's ring nets, so the degree signature is blind
/// and only the closed-walk counts separate decoy from truth.
Netlist long_ring_host(const Cmos3& c, int truth, int decoys) {
  Netlist host = c.netlist("host");
  for (int i = 0; i < truth; ++i) {
    add_ring(c, host, 6, "t" + std::to_string(i) + "_");
  }
  for (int i = 0; i < decoys; ++i) {
    add_ring(c, host, 12, "d" + std::to_string(i) + "_");
  }
  return host;
}

Netlist fat_ring_host(const Cmos3& c, int truth, int decoys) {
  Netlist host = c.netlist("host");
  for (int i = 0; i < truth; ++i) {
    add_ring(c, host, 6, "t" + std::to_string(i) + "_");
  }
  for (int i = 0; i < decoys; ++i) {
    add_ring(c, host, 6, "d" + std::to_string(i) + "_", /*fat=*/true);
  }
  return host;
}

MatchReport run(const Netlist& pattern, const Netlist& host,
                MatchOptions options = {}) {
  return SubgraphMatcher(pattern, host, options).find_all();
}

/// Serialized report with wall-clock zeroed: the byte-identity currency.
std::string report_json(MatchReport report) {
  report.phase1_seconds = 0;
  report.phase2_seconds = 0;
  return report::to_json(report).dump();
}

/// Instance identity that ignores counters: the sorted device-image sets.
std::vector<std::vector<std::size_t>> device_sets(const MatchReport& r) {
  std::vector<std::vector<std::size_t>> sets;
  for (const SubcircuitInstance& inst : r.instances) {
    std::vector<std::size_t> devices;
    for (DeviceId d : inst.device_image) devices.push_back(d.index());
    std::sort(devices.begin(), devices.end());
    sets.push_back(std::move(devices));
  }
  std::sort(sets.begin(), sets.end());
  return sets;
}

// --- the decoy A/B the analyzer exists for ----------------------------------

TEST(AnalyzeMatch, LongRingDecoysRefutedWithoutEnteringTheCensus) {
  Cmos3 c;
  const Netlist pattern = ring_pattern(c, 6);
  const Netlist host = long_ring_host(c, /*truth=*/0, /*decoys=*/3);
  for (CoreMode core : {CoreMode::kCsr, CoreMode::kLegacy}) {
    MatchOptions o;
    o.core = core;
    o.phase2_filter = Phase2Filter::kPaths;
    const MatchReport paths = run(pattern, host, o);
    o.phase2_filter = Phase2Filter::kOn;
    const MatchReport sig = run(pattern, host, o);

    // Both are sound: a decoy-only host holds nothing.
    EXPECT_EQ(paths.count(), 0u);
    EXPECT_EQ(sig.count(), 0u);
    EXPECT_TRUE(paths.status.complete());

    // The acceptance bar: path labels refute every candidate statically —
    // zero guesses AND zero relabeling work. The signature filter cannot
    // see the decoys at all (every degree multiset agrees), so it burns
    // census passes to reject each one.
    EXPECT_EQ(paths.phase2.guesses, 0u);
    EXPECT_EQ(paths.phase2.passes, 0u);
    EXPECT_EQ(paths.phase2.expansion_ops, 0u);
    EXPECT_GT(paths.phase2.path_label_prunes, 0u);
    EXPECT_EQ(sig.phase2.domain_prunes, 0u);
    EXPECT_EQ(sig.phase2.path_label_prunes, 0u);
    EXPECT_GT(sig.phase2.expansion_ops, 0u);
  }
}

TEST(AnalyzeMatch, LongRingDecoysDoNotDisturbTrueMatches) {
  Cmos3 c;
  const Netlist pattern = ring_pattern(c, 6);
  const Netlist host = long_ring_host(c, /*truth=*/2, /*decoys=*/3);
  MatchOptions o;
  const MatchReport paths = run(pattern, host, o);
  o.phase2_filter = Phase2Filter::kOn;
  const MatchReport sig = run(pattern, host, o);

  EXPECT_EQ(paths.count(), 2u);
  EXPECT_EQ(device_sets(paths), device_sets(sig));
  // Decoy work vanishes; the surviving guesses all belong to true rings.
  EXPECT_GT(paths.phase2.path_label_prunes, 0u);
  EXPECT_LT(paths.phase2.expansion_ops, sig.phase2.expansion_ops);
  EXPECT_LE(paths.phase2.guesses, sig.phase2.guesses);
}

TEST(AnalyzeMatch, FatRingDecoysStopCausingBacktracks) {
  Cmos3 c;
  const Netlist pattern = ring_pattern(c, 6);
  const Netlist host = fat_ring_host(c, /*truth=*/2, /*decoys=*/4);
  MatchOptions o;
  const MatchReport paths = run(pattern, host, o);
  o.phase2_filter = Phase2Filter::kOn;
  const MatchReport sig = run(pattern, host, o);
  o.phase2_filter = Phase2Filter::kOff;
  const MatchReport off = run(pattern, host, o);

  // Identical answers across all three filter strengths.
  EXPECT_EQ(paths.count(), 2u);
  EXPECT_EQ(device_sets(paths), device_sets(sig));
  EXPECT_EQ(device_sets(paths), device_sets(off));

  // The fat decoys force the census (and even the signature filter) to
  // guess into the ring and fail; the path labels see the extra device in
  // the walk counts and never start those searches.
  EXPECT_EQ(paths.phase2.backtracks, 0u);
  EXPECT_GT(sig.phase2.backtracks, 0u);
  EXPECT_GE(off.phase2.backtracks, sig.phase2.backtracks);
  EXPECT_LT(paths.phase2.guesses, sig.phase2.guesses);
  EXPECT_LT(sig.phase2.guesses, off.phase2.guesses);
  EXPECT_GT(paths.phase2.path_label_prunes, 0u);
}

// --- identity contracts for the new counters --------------------------------

TEST(AnalyzeMatch, ReportsByteIdenticalAcrossCores) {
  Cmos3 c;
  const Netlist pattern = ring_pattern(c, 6);
  const Netlist host = fat_ring_host(c, 2, 4);
  for (Phase2Filter filter :
       {Phase2Filter::kPaths, Phase2Filter::kOn, Phase2Filter::kOff}) {
    MatchOptions o;
    o.phase2_filter = filter;
    o.core = CoreMode::kCsr;
    const std::string csr = report_json(run(pattern, host, o));
    o.core = CoreMode::kLegacy;
    const std::string legacy = report_json(run(pattern, host, o));
    EXPECT_EQ(csr, legacy) << "filter " << static_cast<int>(filter);
  }
}

TEST(AnalyzeMatch, ReportsByteIdenticalAcrossJobs) {
  Cmos3 c;
  const Netlist pattern = ring_pattern(c, 6);
  // True rings, fat decoys, and long decoys at once: guesses, backtracks,
  // path prunes, and census passes all nonzero in one workload.
  Netlist host = fat_ring_host(c, 2, 3);
  add_ring(c, host, 12, "l0_");
  add_ring(c, host, 12, "l1_");
  MatchOptions o;
  o.jobs = 1;
  const std::string serial = report_json(run(pattern, host, o));
  o.jobs = 8;
  const std::string parallel = report_json(run(pattern, host, o));
  EXPECT_EQ(serial, parallel);

  MatchReport check = run(pattern, host, o);
  EXPECT_EQ(check.count(), 2u);
  EXPECT_GT(check.phase2.path_label_prunes, 0u);
}

// --- symmetry-aware exhaustive enumeration ----------------------------------

TEST(AnalyzeMatch, SymmetrySkipsFoldAutomorphicCompletions) {
  Cmos3 c;
  const Netlist pattern = parallel_pattern(c, 3);
  // Two bundles of 4 parallel devices: each bundle holds C(4,3) = 4
  // distinct device sets, every one reachable 3! ways.
  Netlist host = c.netlist("host");
  for (int gi = 0; gi < 2; ++gi) {
    const std::string p = "h" + std::to_string(gi);
    NetId n1 = host.add_net(p + "a"), n2 = host.add_net(p + "b");
    NetId g = host.add_net(p + "g");
    for (int i = 0; i < 4; ++i) host.add_device(c.nmos, {n1, g, n2});
  }
  MatchOptions o;
  o.exhaustive = true;
  const MatchReport with = run(pattern, host, o);
  o.analyze = false;
  const MatchReport without = run(pattern, host, o);

  EXPECT_EQ(with.count(), 8u);
  EXPECT_EQ(device_sets(with), device_sets(without));
  EXPECT_GT(with.phase2.symmetry_skips, 0u);
  EXPECT_EQ(without.phase2.symmetry_skips, 0u);
}

TEST(AnalyzeMatch, SymmetrySuppressionYieldsToABindingMatchLimit) {
  Cmos3 c;
  const Netlist pattern = parallel_pattern(c, 3);
  Netlist host = c.netlist("host");
  NetId n1 = host.add_net("a"), n2 = host.add_net("b"), g = host.add_net("g");
  for (int i = 0; i < 4; ++i) host.add_device(c.nmos, {n1, g, n2});
  MatchOptions o;
  o.exhaustive = true;
  o.max_matches = 3;
  const MatchReport report = run(pattern, host, o);
  // A binding limit changes which completions are "already recorded", so
  // suppression is disabled rather than risk skipping a would-be result.
  EXPECT_EQ(report.phase2.symmetry_skips, 0u);
  EXPECT_LE(report.count(), 3u);
}

// --- infeasibility short-circuits -------------------------------------------

TEST(AnalyzeMatch, CertificateShortCircuitsFind) {
  Cmos3 c;
  const Netlist pattern = c.inv_pattern(/*global_rails=*/false);
  Netlist host = c.netlist("host");
  add_ring(c, host, 6, "r");  // nmos only: no pmos for the inverter's pullup
  const MatchReport report = run(pattern, host);

  EXPECT_EQ(report.count(), 0u);
  EXPECT_EQ(report.infeasible_shortcuts, 1u);
  ASSERT_TRUE(report.infeasibility.has_value());
  EXPECT_EQ(report.infeasibility->rule, "device_type_deficit");
  EXPECT_EQ(report.infeasibility->subject, "pmos");
  // The shortcut skipped the search entirely, and the empty answer is
  // exact, not truncated.
  EXPECT_TRUE(report.status.complete());
  EXPECT_EQ(report.phase2.candidates_tried, 0u);

  MatchOptions o;
  o.analyze = false;
  const MatchReport slow = run(pattern, host, o);
  EXPECT_EQ(slow.count(), 0u);
  EXPECT_EQ(slow.infeasible_shortcuts, 0u);
  EXPECT_FALSE(slow.infeasibility.has_value());
}

TEST(AnalyzeMatch, ExtractFlagsInfeasibleCellsAndKeepsGoing) {
  Cmos3 c;
  // Host: two nmos in series — a "pair" instance, nothing for an inverter.
  Netlist host = c.netlist("host");
  NetId a = host.add_net("a"), mid = host.add_net("mid"), b = host.add_net("b");
  NetId g1 = host.add_net("g1"), g2 = host.add_net("g2");
  host.add_device(c.nmos, {a, g1, mid});
  host.add_device(c.nmos, {mid, g2, b});

  Netlist pair = c.netlist("pair");
  NetId pa = pair.add_net("a"), pm = pair.add_net("mid"), pb = pair.add_net("b");
  NetId pg1 = pair.add_net("g1"), pg2 = pair.add_net("g2");
  pair.add_device(c.nmos, {pa, pg1, pm});
  pair.add_device(c.nmos, {pm, pg2, pb});
  for (NetId n : {pa, pb, pg1, pg2}) pair.mark_port(n);

  const std::vector<extract::LibraryCell> cells = {
      {"inv", c.inv_pattern(/*global_rails=*/false)},
      {"pair", pair},
  };
  const extract::ExtractResult result = extract::extract_gates(host, cells);

  EXPECT_EQ(result.report.infeasible_shortcuts, 1u);
  ASSERT_EQ(result.report.cells.size(), 2u);
  for (const auto& cell : result.report.cells) {
    if (cell.cell == "inv") {
      EXPECT_TRUE(cell.infeasible);
      EXPECT_EQ(cell.instances, 0u);
    } else {
      EXPECT_EQ(cell.cell, "pair");
      EXPECT_FALSE(cell.infeasible);
      EXPECT_EQ(cell.instances, 1u);
      EXPECT_EQ(cell.devices_replaced, 2u);
    }
  }
  EXPECT_EQ(result.report.devices_after, 1u);
}

// --- ECO-patched sessions ----------------------------------------------------

/// A nand2 delta: one more gate (4 devices) wired off existing soup nets.
const char* kNandDelta =
    "{\"op\":\"add_device\",\"type\":\"pmos\",\"name\":\"eco_p0\","
    "\"nets\":[\"eco_z\",\"pi0\",\"vdd\",\"vdd\"]}\n"
    "{\"op\":\"add_device\",\"type\":\"pmos\",\"name\":\"eco_p1\","
    "\"nets\":[\"eco_z\",\"pi1\",\"vdd\",\"vdd\"]}\n"
    "{\"op\":\"add_device\",\"type\":\"nmos\",\"name\":\"eco_n0\","
    "\"nets\":[\"eco_z\",\"pi0\",\"eco_x\",\"gnd\"]}\n"
    "{\"op\":\"add_device\",\"type\":\"nmos\",\"name\":\"eco_n1\","
    "\"nets\":[\"eco_x\",\"pi1\",\"gnd\",\"gnd\"]}\n";

TEST(AnalyzeMatch, PatchedSessionLabelsAndReportsMatchColdBuild) {
  gen::Generated g = gen::logic_soup(60, 99);
  cells::CellLibrary lib;
  const Netlist pattern = lib.pattern("nand2");

  HostSession session = HostSession::build(g.netlist);
  (void)session.apply(parse_delta(kNandDelta));

  // The rebased labels must be bit-identical to a cold build over the
  // patched netlist (audit A19's contract, restated at the API surface).
  HostSession cold = HostSession::build(session.netlist());
  EXPECT_EQ(session.path_labels().walk_steps, cold.path_labels().walk_steps);
  EXPECT_EQ(session.path_labels().counts, cold.path_labels().counts);

  // ... and so must everything a find reports, new counters included
  // (kPaths and the certificate check are the defaults here).
  EXPECT_EQ(report_json(find_in_session(pattern, session)),
            report_json(find_in_session(pattern, cold)));
}

TEST(AnalyzeMatch, LegacyCoreSessionAgreesAfterPatch) {
  gen::Generated g = gen::logic_soup(60, 99);
  cells::CellLibrary lib;
  const Netlist pattern = lib.pattern("nand2");

  HostSession csr = HostSession::build(g.netlist);
  SessionOptions so;
  so.core = CoreMode::kLegacy;
  HostSession legacy = HostSession::build(g.netlist, so);
  (void)csr.apply(parse_delta(kNandDelta));
  (void)legacy.apply(parse_delta(kNandDelta));

  EXPECT_EQ(csr.path_labels().counts, legacy.path_labels().counts);
  MatchOptions lo;
  lo.core = CoreMode::kLegacy;
  EXPECT_EQ(report_json(find_in_session(pattern, csr)),
            report_json(find_in_session(pattern, legacy, lo)));
}

}  // namespace
}  // namespace subg
