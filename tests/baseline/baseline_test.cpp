#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "match/verify.hpp"

namespace subg {
namespace {

using cells::CellLibrary;

TEST(Baseline, UllmannFindsXorInFullAdder) {
  CellLibrary lib;
  Netlist pattern = lib.pattern("xor2");
  Netlist host = lib.pattern("fulladder");
  BaselineResult r = match_ullmann(pattern, host);
  EXPECT_EQ(r.count(), 2u);
  EXPECT_FALSE(r.budget_exhausted);
}

TEST(Baseline, Vf2FindsXorInFullAdder) {
  CellLibrary lib;
  Netlist pattern = lib.pattern("xor2");
  Netlist host = lib.pattern("fulladder");
  BaselineResult r = match_vf2(pattern, host);
  EXPECT_EQ(r.count(), 2u);
}

TEST(Baseline, BothRespectInducedSemantics) {
  // nand2 inside nand3? The nand2's internal stack node would need degree 2
  // but sits inside a 3-stack — not an induced instance. Both baselines
  // must reject it.
  CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
  Netlist host = lib.pattern("nand3");
  EXPECT_EQ(match_ullmann(pattern, host).count(), 0u);
  EXPECT_EQ(match_vf2(pattern, host).count(), 0u);
}

TEST(Baseline, GlobalsBindByName) {
  CellLibrary lib;
  Netlist pattern = lib.pattern("inv");

  Design& d = lib.design();
  ModuleId inv = lib.module("inv");
  ModuleId top = d.add_module("top2", {"a", "y"});
  Module& m = d.module(top);
  NetId mid = m.add_net("mid");
  m.add_instance(inv, {*m.find_net("a"), mid});
  m.add_instance(inv, {mid, *m.find_net("y")});
  Netlist host = d.flatten("top2");

  EXPECT_EQ(match_ullmann(pattern, host).count(), 2u);
  EXPECT_EQ(match_vf2(pattern, host).count(), 2u);
}

TEST(Baseline, NodeBudgetAborts) {
  gen::Generated host = gen::logic_soup(120, 5);
  CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
  BaselineOptions opts;
  opts.node_budget = 10;
  BaselineResult r = match_vf2(pattern, host.netlist, opts);
  EXPECT_TRUE(r.budget_exhausted);
}

TEST(Baseline, MaxMatchesStopsEarly) {
  gen::Generated host = gen::ripple_carry_adder(4);
  CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
  BaselineOptions opts;
  opts.max_matches = 3;
  EXPECT_EQ(match_ullmann(pattern, host.netlist, opts).count(), 3u);
  EXPECT_EQ(match_vf2(pattern, host.netlist, opts).count(), 3u);
}

TEST(Baseline, EveryReportedInstanceVerifies) {
  gen::Generated host = gen::c17();
  CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
  for (auto* fn : {&match_ullmann, &match_vf2}) {
    BaselineResult r = (*fn)(pattern, host.netlist, BaselineOptions{});
    EXPECT_EQ(r.count(), 6u);
    for (const auto& inst : r.instances) {
      EXPECT_TRUE(verify_instance(pattern, host.netlist, inst));
    }
  }
}

TEST(Baseline, ExhaustiveModeMatchesUllmannOnOverlappingInstances) {
  // Pattern: two parallel nmos. Host: THREE parallel nmos — the three
  // 2-subsets are distinct overlapping instances sharing key images.
  // Default (per-key-image) semantics finds fewer; exhaustive mode must
  // agree with full enumeration.
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  Netlist pattern(cat, "pair");
  NetId n1 = pattern.add_net("n1"), n2 = pattern.add_net("n2"),
        g = pattern.add_net("g");
  pattern.add_device(nmos, {n1, g, n2});
  pattern.add_device(nmos, {n1, g, n2});
  for (NetId p : {n1, n2, g}) pattern.mark_port(p);

  Netlist host(cat, "triple");
  NetId h1 = host.add_net("h1"), h2 = host.add_net("h2"), hg = host.add_net("hg");
  for (int i = 0; i < 3; ++i) host.add_device(nmos, {h1, hg, h2});

  const std::size_t ull = match_ullmann(pattern, host).count();
  EXPECT_EQ(ull, 3u);  // {0,1}, {0,2}, {1,2}

  MatchOptions exhaustive;
  exhaustive.exhaustive = true;
  SubgraphMatcher ex(pattern, host, exhaustive);
  EXPECT_EQ(ex.find_all().count(), ull);

  SubgraphMatcher plain(pattern, host);
  EXPECT_LE(plain.find_all().count(), ull);  // per-key-image semantics
}

TEST(Baseline, ExhaustiveEqualsPlainWhenInstancesAreDisjoint) {
  gen::Generated host = gen::ripple_carry_adder(3);
  CellLibrary lib;
  Netlist pattern = lib.pattern("xor2");
  MatchOptions exhaustive;
  exhaustive.exhaustive = true;
  SubgraphMatcher ex(pattern, host.netlist, exhaustive);
  SubgraphMatcher plain(pattern, host.netlist);
  EXPECT_EQ(ex.find_all().count(), plain.find_all().count());
  EXPECT_EQ(ex.find_all().count(), 6u);
}

class CrossValidation
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CrossValidation, AllThreeMatchersAgree) {
  // Property: on generated workloads, SubGemini, Ullmann and VF2 report the
  // same instance count (instances here are non-overlapping, so the
  // one-per-key-image semantics coincides with full enumeration), and
  // SubGemini finds at least the construction-placed count.
  const auto& [cell, which] = GetParam();
  gen::Generated host = which == 0   ? gen::ripple_carry_adder(3)
                        : which == 1 ? gen::sram_array(4, 4)
                                     : gen::logic_soup(60, 11);
  CellLibrary lib;
  Netlist pattern = lib.pattern(cell);

  SubgraphMatcher matcher(pattern, host.netlist);
  const std::size_t sub = matcher.find_all().count();
  BaselineOptions bopts;
  bopts.node_budget = 20'000'000;
  const BaselineResult ull = match_ullmann(pattern, host.netlist, bopts);
  const BaselineResult vf2 = match_vf2(pattern, host.netlist, bopts);
  // Ullmann's refinement keeps its search tree small on circuit graphs.
  ASSERT_FALSE(ull.budget_exhausted) << cell;
  // The VF2-style DFS is the paper's strawman: on large symmetric patterns
  // (fulladder: two identical xor cells) it can blow through any budget —
  // only compare counts when it finished.
  if (!vf2.budget_exhausted) {
    EXPECT_EQ(ull.count(), vf2.count()) << cell;
  }
  EXPECT_GE(sub, host.placed_count(cell)) << cell;
  if (which == 2) {
    // Random wiring can create overlapping instances sharing a key image;
    // SubGemini reports one per key image, full enumeration may see more —
    // unless exhaustive mode is on, which must agree exactly.
    EXPECT_LE(sub, ull.count()) << cell;
    MatchOptions exhaustive;
    exhaustive.exhaustive = true;
    SubgraphMatcher ex(pattern, host.netlist, exhaustive);
    EXPECT_EQ(ex.find_all().count(), ull.count()) << cell;
  } else {
    EXPECT_EQ(sub, ull.count()) << cell;
  }
}

INSTANTIATE_TEST_SUITE_P(
    CellsByWorkload, CrossValidation,
    ::testing::Combine(::testing::Values("inv", "nand2", "nor2", "xor2",
                                         "sram6t", "fulladder"),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace subg
