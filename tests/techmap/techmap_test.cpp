#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "techmap/techmap.hpp"

namespace subg::techmap {
namespace {

using cells::CellLibrary;

std::vector<MapCell> make_library(
    std::initializer_list<std::pair<const char*, double>> cells) {
  CellLibrary lib;
  std::vector<MapCell> out;
  for (auto [name, cost] : cells) {
    out.push_back(MapCell{name, lib.pattern(name), cost});
  }
  return out;
}

TEST(Techmap, CoversC17WithNands) {
  gen::Generated g = gen::c17();
  auto lib = make_library({{"nand2", 1.0}});
  MapResult r = map(g.netlist, lib);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.chosen.size(), 6u);
  EXPECT_DOUBLE_EQ(r.total_cost, 6.0);
  EXPECT_TRUE(r.optimal);
}

TEST(Techmap, PrefersCheaperCover) {
  // Full adder subject. Library: fulladder (cost 5) vs {xor2 (cost 3),
  // nand2 (cost 1)}. Covering with the single fulladder costs 5; the
  // decomposition costs 2*3 + 3*1 = 9 — the mapper must take the FA.
  CellLibrary cl;
  Netlist subject = cl.pattern("fulladder");
  auto lib = make_library({{"fulladder", 5.0}, {"xor2", 3.0}, {"nand2", 1.0}});
  MapResult r = map(subject, lib);
  ASSERT_TRUE(r.complete());
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(lib[r.chosen[0].cell].name, "fulladder");
  EXPECT_DOUBLE_EQ(r.total_cost, 5.0);
}

TEST(Techmap, PrefersDecompositionWhenCheaper) {
  // Same subject, but the fulladder macro is overpriced.
  CellLibrary cl;
  Netlist subject = cl.pattern("fulladder");
  auto lib = make_library({{"fulladder", 100.0}, {"xor2", 3.0}, {"nand2", 1.0}});
  MapResult r = map(subject, lib);
  ASSERT_TRUE(r.complete());
  EXPECT_EQ(r.chosen.size(), 5u);  // 2 xor2 + 3 nand2
  EXPECT_DOUBLE_EQ(r.total_cost, 9.0);
}

TEST(Techmap, CoverageBeatsCost) {
  // A NAND2 subject with library {inv} only: inverters cannot cover a NAND
  // (wrong structure), so the mapping is incomplete — and reported so.
  CellLibrary cl;
  Netlist subject = cl.pattern("nand2");
  auto lib = make_library({{"inv", 1.0}});
  MapResult r = map(subject, lib);
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.uncovered_devices, 4u);
  EXPECT_TRUE(r.chosen.empty());
}

TEST(Techmap, OverlappingChoicesResolvedExactly) {
  // Chain of 3 pass transistors; pattern library: the 2-chain (cost 3) and
  // the single device (cost 2). Best cover: one 2-chain + one single
  // (cost 5), not three singles (cost 6). The 2-chain instances overlap on
  // the middle device, so this exercises the exact cluster solver.
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  Netlist subject(cat, "chain3");
  NetId n0 = subject.add_net("n0"), n1 = subject.add_net("n1"),
        n2 = subject.add_net("n2"), n3 = subject.add_net("n3");
  NetId g1 = subject.add_net("g1"), g2 = subject.add_net("g2"),
        g3 = subject.add_net("g3");
  subject.add_device(nmos, {n0, g1, n1});
  subject.add_device(nmos, {n1, g2, n2});
  subject.add_device(nmos, {n2, g3, n3});

  Netlist two(cat, "pass2");
  {
    NetId a = two.add_net("a"), m = two.add_net("m"), b = two.add_net("b");
    NetId ga = two.add_net("ga"), gb = two.add_net("gb");
    two.add_device(nmos, {a, ga, m});
    two.add_device(nmos, {m, gb, b});
    for (NetId p : {a, b, ga, gb}) two.mark_port(p);
  }
  Netlist one(cat, "pass1");
  {
    NetId a = one.add_net("a"), b = one.add_net("b"), g = one.add_net("g");
    one.add_device(nmos, {a, g, b});
    for (NetId p : {a, b, g}) one.mark_port(p);
  }
  std::vector<MapCell> lib;
  lib.push_back(MapCell{"pass2", std::move(two), 3.0});
  lib.push_back(MapCell{"pass1", std::move(one), 2.0});

  MapResult r = map(subject, lib);
  ASSERT_TRUE(r.complete());
  EXPECT_TRUE(r.optimal);
  EXPECT_DOUBLE_EQ(r.total_cost, 5.0);
  EXPECT_EQ(r.chosen.size(), 2u);
}

TEST(Techmap, AdderMapsToFullAdders) {
  gen::Generated g = gen::ripple_carry_adder(6);
  auto lib = make_library({{"fulladder", 10.0}, {"xor2", 4.0}, {"nand2", 2.0},
                           {"inv", 1.0}});
  MapResult r = map(g.netlist, lib);
  ASSERT_TRUE(r.complete());
  // 6 FAs at cost 10 beats any decomposition (2*4 + 3*2 = 14 each).
  EXPECT_EQ(r.chosen.size(), 6u);
  EXPECT_DOUBLE_EQ(r.total_cost, 60.0);
}

TEST(Techmap, DefaultCostIsDeviceCount) {
  gen::Generated g = gen::c17();
  CellLibrary cl;
  std::vector<MapCell> lib;
  lib.push_back(MapCell{"nand2", cl.pattern("nand2")});  // cost unset
  MapResult r = map(g.netlist, lib);
  EXPECT_TRUE(r.complete());
  EXPECT_DOUBLE_EQ(r.total_cost, 6.0 * 4.0);
}

}  // namespace
}  // namespace subg::techmap
