// subgemini — command-line front end for the library.
//
//   subgemini find <pattern.sp> <host.sp>
//       Find instances of a subcircuit. The pattern file's top is its
//       first .SUBCKT unless named; the host top defaults to "main"
//       (top-level cards). --delta=FILE applies an ECO edit script to the
//       host session before matching.
//   subgemini extract <library.sp> <host.sp>
//       Extract every .SUBCKT of the library deck from the host,
//       largest-first; writes the gate-level netlist as SPICE to stdout.
//       Honors --delta=FILE like find.
//   subgemini analyze <pattern.sp> [host.sp]
//       Pre-search static analysis: pattern automorphisms/orbits, the
//       supplemental path-label signature classes, and — when a host is
//       given — the infeasibility certificates. Exit 0 when no certificate
//       fires, 1 when the pairing is statically refuted.
//   subgemini compare <a.sp> <b.sp>
//       Gemini netlist isomorphism check (LVS-lite). Exit 0 iff isomorphic.
//   subgemini check <host.sp>
//       Run the built-in circuit rule library. Exit 0 iff clean of errors.
//   subgemini lint <netlist.sp>
//       Static netlist analysis: floating gates, dangling nets, rail
//       shorts, duplicate instances, parse-level defects. Always parses in
//       recovering mode (card failures become findings). Exit 0 when no
//       finding reaches the --fail-on threshold, 1 for warnings at
//       --fail-on=warn, 2 for errors.
//   subgemini reduce <host.sp>
//       Series/parallel device reduction; writes SPICE to stdout.
//   subgemini stats <host.sp>
//       Netlist statistics.
//
// Global flags (anywhere after the command) are parsed by the shared
// cli::parse_args — see util/cli_options.hpp for the full list. Top module
// names are given as --top=NAME (the host / second / sole input) and
// --pattern-top=NAME (the pattern / first input); the old positional top
// slots were removed and now exit 64. --format=json replaces every
// command's stdout with one versioned report::Document (schema_version 1,
// see README.md); --format=text output is unchanged.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "benchfmt/benchfmt.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "lint/lint.hpp"
#include "lvs/lvs.hpp"
#include "match/host_labels.hpp"
#include "match/matcher.hpp"
#include "obs/metrics.hpp"
#include "reduce/reduce.hpp"
#include "report/document.hpp"
#include "rulecheck/rulecheck.hpp"
#include "serve/server.hpp"
#include "session/session.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"
#include "util/cli_options.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"
#include "verilog/verilog.hpp"

namespace {

using namespace subg;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  subgemini find <pattern.sp> <host.sp>\n"
      "  subgemini extract <library.sp> <host.sp>\n"
      "  subgemini analyze <pattern.sp> [host.sp]\n"
      "  subgemini compare <a.sp> <b.sp>\n"
      "  subgemini lvs <layout.sp> <schematic.sp>\n"
      "  subgemini check <host.sp>\n"
      "  subgemini lint <netlist.sp>\n"
      "  subgemini reduce <host.sp>\n"
      "  subgemini stats <host.sp>\n"
      "  subgemini serve [name=]<host.sp> ...\n"
      "\nInputs may be SPICE (.sp), structural Verilog (.v), or ISCAS "
      "(.bench).\nTop modules are selected with --top= (host / second / "
      "sole input)\nand --pattern-top= (pattern / first input).\n"
      "\nflags:\n%s"
      "\nexit codes: 0 success; 1 not isomorphic / rule violations / lint\n"
      "  warnings at --fail-on=warn; 2 lint errors; 64 usage; 65 malformed\n"
      "  input; 70 internal error; 75 resource limit hit (results "
      "incomplete)\n",
      cli::global_flags_help());
  return 64;
}

/// Global options for the invocation (set once in main).
cli::GlobalOptions g_opts;
/// Metrics registry when --metrics was given; null otherwise.
obs::Metrics* g_metrics = nullptr;

/// A command-line contradiction (e.g. both --top and a positional top):
/// caught in main, reported, and mapped to the usage exit.
struct UsageError {
  std::string message;
};

[[nodiscard]] bool json_output() {
  return g_opts.format == cli::Format::kJson;
}

/// Print collected parse diagnostics; returns true if any were errors. One
/// stream write for the whole batch, so concurrent lanes' stderr cannot
/// interleave mid-line with it.
bool flush_diagnostics(const DiagnosticSink& sink) {
  const std::string text = sink.summary();
  if (!text.empty()) {
    std::fwrite(text.data(), 1, text.size(), stderr);
  }
  return sink.error_count() > 0;
}

/// sysexits-style mapping: anything short of a complete sweep is a
/// temporary failure (75) so scripts cannot mistake partial results for
/// the full answer.
int outcome_exit(const RunStatus& status, int ok) {
  if (status.complete()) return ok;
  std::fprintf(stderr, "subgemini: search %s: %s\n",
               to_string(status.outcome), status.reason.c_str());
  return 75;
}

/// Every one-shot command takes a fixed number of positional FILE
/// arguments; the old trailing top-name slots are gone. Anything extra is
/// a usage error with a pointer at the named flags that replaced them.
void reject_extras(const std::vector<std::string>& positionals,
                   std::size_t expected) {
  if (positionals.size() <= expected) return;
  throw UsageError{"unexpected argument '" + positionals[expected] +
                   "' (positional top names were removed; use --top=NAME / "
                   "--pattern-top=NAME)"};
}

/// Build the host session for find/extract and apply --delta when given.
/// Returns the per-patch stats iff a delta was applied (also folded into
/// the eco.* counters when --metrics armed a registry).
std::optional<ApplyStats> apply_cli_delta(HostSession& session) {
  if (g_opts.delta_path.empty()) return std::nullopt;
  const ApplyStats stats = session.apply(parse_delta_file(g_opts.delta_path));
  record_eco_stats(g_metrics, stats);
  return stats;
}

/// The "eco" member of find/extract json documents: what --delta did.
json::Value eco_json(const ApplyStats& stats) {
  json::Value v = json::Value::object();
  v.set("patched_devices", stats.patched_devices);
  v.set("patched_nets", stats.patched_nets);
  v.set("renames", stats.renames);
  v.set("invalidated_labels", stats.invalidated_labels);
  v.set("compactions", stats.compactions);
  return v;
}

/// One-line text-mode summary of an applied --delta, on `out`.
void print_eco_line(std::FILE* out, const ApplyStats& stats) {
  std::fprintf(out,
               "# eco: %llu device ops, %llu net ops, %llu renames, "
               "%llu labels recomputed, %llu compactions\n",
               static_cast<unsigned long long>(stats.patched_devices),
               static_cast<unsigned long long>(stats.patched_nets),
               static_cast<unsigned long long>(stats.renames),
               static_cast<unsigned long long>(stats.invalidated_labels),
               static_cast<unsigned long long>(stats.compactions));
}

/// Record the session core's footprint the way the one-shot matcher used
/// to for its owned host core, so --metrics output keeps the csr.* view.
void record_session_core(const HostSession& session) {
  if (const CsrCore* core = session.core()) {
    obs::span_add(g_metrics, "csr.build_seconds", core->build_seconds());
    obs::gauge(g_metrics, "csr.bytes", static_cast<double>(core->bytes()));
  }
}

/// First .SUBCKT name of a design, or "main" when it only has top cards.
/// Shared with the serve daemon so both front ends pick the same module.
std::string default_top(const Design& design, const std::string& requested) {
  return serve::default_top(design, requested);
}

[[nodiscard]] bool is_verilog(const std::string& path) {
  return ends_with_icase(path, ".v") || ends_with_icase(path, ".sv") ||
         ends_with_icase(path, ".vh");
}

[[nodiscard]] bool is_bench(const std::string& path) {
  return ends_with_icase(path, ".bench");
}

/// Read a hierarchical design from SPICE or Verilog, honoring --lenient.
Design load_design(const std::string& path) {
  DiagnosticSink sink;
  DiagnosticSink* diags = g_opts.lenient ? &sink : nullptr;
  Design design = [&] {
    if (is_verilog(path)) {
      verilog::ReadOptions opts;
      opts.diagnostics = diags;
      return verilog::read_file(path, opts);
    }
    spice::ReadOptions opts;
    opts.diagnostics = diags;
    return spice::read_file(path, opts);
  }();
  flush_diagnostics(sink);
  return design;
}

/// Load a netlist from SPICE, structural Verilog, or ISCAS .bench (by file
/// extension; .bench expands to transistor level).
Netlist load(const std::string& path, const std::string& top) {
  if (is_bench(path)) {
    DiagnosticSink sink;
    benchfmt::ReadOptions opts;
    opts.diagnostics = g_opts.lenient ? &sink : nullptr;
    Netlist transistors = std::move(benchfmt::read_file(path, opts).transistors);
    flush_diagnostics(sink);
    return transistors;
  }
  Design design = load_design(path);
  if (is_verilog(path)) {
    // Verilog: prefer the last-defined module as top (conventional).
    std::string chosen = top;
    if (chosen.empty() && design.module_count() > 0) {
      chosen =
          design.module(ModuleId(static_cast<std::uint32_t>(
                             design.module_count() - 1)))
              .name();
    }
    return design.flatten(chosen);
  }
  return design.flatten(default_top(design, top));
}

/// Emit in the format matching the INPUT file the netlist came from.
void emit(const std::string& like_path, const Netlist& netlist) {
  if (is_verilog(like_path)) {
    verilog::write(std::cout, netlist);
  } else {
    spice::write(std::cout, netlist);
  }
}

/// {"name": ..., "devices": ..., "nets": ...} — how a loaded netlist
/// appears in every json document. Delegates to the serve protocol builder
/// so one-shot documents and serve responses agree member for member.
json::Value netlist_summary(const Netlist& netlist) {
  return serve::netlist_summary(netlist);
}

/// The emitted-netlist member of extract/reduce documents: the full text in
/// the format emit() would print, tagged with which format that is.
json::Value netlist_text(const std::string& like_path, const Netlist& netlist) {
  std::ostringstream os;
  json::Value v = json::Value::object();
  if (is_verilog(like_path)) {
    verilog::write(os, netlist);
    v.set("format", "verilog");
  } else {
    spice::write(os, netlist);
    v.set("format", "spice");
  }
  v.set("text", os.str());
  return v;
}

/// Attach the collected metrics (when --metrics armed a registry) and print
/// the document — the single exit path of every json-mode command.
int finish_document(report::Document& doc, const RunStatus& status, int ok) {
  if (g_metrics != nullptr) doc.set_metrics(g_metrics->collect());
  doc.write(std::cout);
  return outcome_exit(status, ok);
}

int cmd_find(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  reject_extras(args, 2);
  Netlist pattern = load(args[0], g_opts.pattern_top);

  // The host lives in a session: one owned bundle of graph + csr core +
  // label cache, patched in place by --delta instead of reparsed.
  SessionOptions so;
  so.core = g_opts.core;
  so.shard_target_devices = g_opts.shard_target_devices;
  HostSession session = HostSession::build(load(args[1], g_opts.top), so);
  const std::optional<ApplyStats> eco = apply_cli_delta(session);
  record_session_core(session);
  const Netlist& host = session.netlist();

  MatchOptions opts;
  opts.budget = g_opts.budget;
  opts.jobs = g_opts.jobs;
  opts.metrics = g_metrics;
  opts.core = g_opts.core;
  opts.phase2_filter = g_opts.phase2_filter;
  opts.analyze = g_opts.analyze;
  MatchReport report = find_in_session(pattern, session, opts);
  // The cache is session-owned, so Phase I leaves its reuse totals to us.
  record_cache_stats(g_metrics, session.cache().stats());

  if (json_output()) {
    report::Document doc("subgemini", "find");
    doc.set("pattern", netlist_summary(pattern));
    doc.set("host", netlist_summary(host));
    if (eco.has_value()) doc.set("eco", eco_json(*eco));
    // Built by the serve protocol helper, so a serve `find` response and
    // this document agree byte for byte on the instances member.
    doc.set("instances", serve::instances_json(pattern, host, report));
    doc.set("report", report::to_json(report));
    if (report.infeasibility.has_value()) {
      // The pre-search analyzer refuted the pairing and the search never
      // ran: say why, machine-readably (additive schema-v1 member).
      json::Value analysis = json::Value::object();
      analysis.set("infeasible", true);
      analysis.set("certificate", report::to_json(*report.infeasibility));
      doc.set("analysis", std::move(analysis));
    }
    return finish_document(doc, report.status, 0);
  }

  std::printf("# pattern %s (%zu devices), host %s (%zu devices)\n",
              pattern.name().c_str(), pattern.device_count(),
              host.name().c_str(), host.device_count());
  if (eco.has_value()) print_eco_line(stdout, *eco);
  if (report.infeasibility.has_value()) {
    std::printf("# statically infeasible (%s): %s\n",
                report.infeasibility->rule.c_str(),
                report.infeasibility->detail.c_str());
  }
  std::printf("# candidates %zu, instances %zu, %.2f ms (phase I %.2f)\n",
              report.phase1.candidates.size(), report.count(),
              report.total_seconds() * 1e3, report.phase1_seconds * 1e3);
  if (!report.status.complete()) {
    std::printf("# outcome %s: %s (%zu candidates skipped, %zu guesses "
                "abandoned)\n",
                to_string(report.status.outcome), report.status.reason.c_str(),
                report.status.candidates_skipped,
                report.status.guesses_abandoned);
  }
  for (std::size_t i = 0; i < report.count(); ++i) {
    const SubcircuitInstance& inst = report.instances[i];
    std::printf("instance %zu:", i);
    for (NetId port : pattern.ports()) {
      std::printf(" %s=%s", pattern.net_name(port).c_str(),
                  host.net_name(inst.net_image[port.index()]).c_str());
    }
    std::printf("\n  devices:");
    for (std::uint32_t d = 0; d < inst.device_image.size(); ++d) {
      std::printf(" %s", host.device_name(inst.device_image[d]).c_str());
    }
    std::printf("\n");
  }
  return outcome_exit(report.status, 0);
}

int cmd_extract(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  reject_extras(args, 2);
  Design lib = load_design(args[0]);

  SessionOptions so;
  so.core = g_opts.core;
  so.shard_target_devices = g_opts.shard_target_devices;
  HostSession session = HostSession::build(load(args[1], g_opts.top), so);
  const std::optional<ApplyStats> eco = apply_cli_delta(session);
  const Netlist& host = session.netlist();

  std::vector<extract::LibraryCell> cells;
  for (std::uint32_t m = 0; m < lib.module_count(); ++m) {
    const Module& mod = lib.module(ModuleId(m));
    if (mod.ports().empty() || (mod.device_count() == 0 &&
                                mod.instance_count() == 0)) {
      continue;  // the implicit 'main', or an empty stub
    }
    cells.push_back(extract::LibraryCell{mod.name(), lib.flatten(mod.name())});
  }
  SUBG_CHECK_MSG(!cells.empty(), "library deck has no usable .SUBCKT");

  extract::ExtractOptions options;
  options.match.budget = g_opts.budget;
  options.match.jobs = g_opts.jobs;
  options.match.metrics = g_metrics;
  options.match.core = g_opts.core;
  options.match.phase2_filter = g_opts.phase2_filter;
  options.match.analyze = g_opts.analyze;
  options.lint_host = g_opts.lint;
  extract::ExtractResult result =
      extract::extract_gates(session, cells, options);
  if (g_opts.lint && !result.host_lint.clean()) {
    // Findings go to stderr: stdout stays the netlist (or the document).
    std::ostringstream lint_text;
    result.host_lint.write_text(lint_text);
    std::fputs(lint_text.str().c_str(), stderr);
  }
  const bool lint_gated = g_opts.lint && result.host_lint.has_errors();
  if (eco.has_value()) print_eco_line(stderr, *eco);
  std::fprintf(stderr, "# %zu transistors -> %zu devices (%zu unextracted)\n",
               result.report.devices_before, result.report.devices_after,
               result.report.unextracted_primitives);
  for (const auto& per : result.report.cells) {
    if (per.instances) {
      std::fprintf(stderr, "#   %-12s x %zu%s\n", per.cell.c_str(),
                   per.instances,
                   per.outcome == RunOutcome::kComplete ? "" : " (partial)");
    }
  }
  if (result.report.cells_skipped > 0) {
    std::fprintf(stderr, "#   %zu cell(s) not attempted\n",
                 result.report.cells_skipped);
  }

  if (json_output()) {
    report::Document doc("subgemini", "extract");
    doc.set("host", netlist_summary(host));
    if (eco.has_value()) doc.set("eco", eco_json(*eco));
    doc.set("library_cells", cells.size());
    doc.set("report", report::to_json(result.report));
    if (g_opts.lint) doc.set("lint", report::to_json(result.host_lint));
    if (lint_gated) {
      // The document still carries the findings, but a lint-gated run is a
      // data error, not a resource outcome: exit 65.
      if (g_metrics != nullptr) doc.set_metrics(g_metrics->collect());
      doc.write(std::cout);
      return 65;
    }
    doc.set("netlist", netlist_text(args[1], result.netlist));
    return finish_document(doc, result.report.status, 0);
  }

  if (lint_gated) return 65;
  emit(args[1], result.netlist);
  return outcome_exit(result.report.status, 0);
}

int cmd_analyze(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  reject_extras(args, 2);
  Netlist pattern = load(args[0], g_opts.pattern_top);
  std::optional<Netlist> host;
  if (args.size() >= 2) host = load(args[1], g_opts.top);

  const analyze::AnalysisReport report =
      analyze::analyze(pattern, host.has_value() ? &*host : nullptr);

  if (json_output()) {
    report::Document doc("subgemini", "analyze");
    doc.set("pattern", netlist_summary(pattern));
    if (host.has_value()) doc.set("host", netlist_summary(*host));
    doc.set("analysis", report::to_json(report));
    RunStatus status;  // static analysis always completes
    return finish_document(doc, status, report.infeasible() ? 1 : 0);
  }

  std::ostringstream os;
  analyze::write_text(report, os);
  std::fputs(os.str().c_str(), stdout);
  return report.infeasible() ? 1 : 0;
}

int cmd_compare(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  reject_extras(args, 2);
  Netlist a = load(args[0], g_opts.pattern_top);
  Netlist b = load(args[1], g_opts.top);
  CompareOptions options;
  options.budget = g_opts.budget;
  CompareResult r = compare_netlists(a, b, options);

  if (json_output()) {
    report::Document doc("subgemini", "compare");
    doc.set("a", netlist_summary(a));
    doc.set("b", netlist_summary(b));
    doc.set("result", report::to_json(r));
    if (g_metrics != nullptr) doc.set_metrics(g_metrics->collect());
    doc.write(std::cout);
    // Fall through to the same verdict-to-exit-code mapping as text mode.
  } else if (r.isomorphic) {
    std::printf("ISOMORPHIC (%zu refinement rounds, %zu individuations)\n",
                r.rounds, r.individuations);
  } else {
    std::printf("NOT ISOMORPHIC: %s\n", r.reason.c_str());
  }

  if (r.isomorphic) return 0;
  if (r.outcome != RunOutcome::kComplete) {
    // The search was cut short, so "not isomorphic" is inconclusive.
    std::fprintf(stderr, "subgemini: comparison %s: %s\n",
                 to_string(r.outcome), r.reason.c_str());
    return 75;
  }
  return 1;
}

int cmd_check(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  reject_extras(args, 1);
  Netlist host = load(args[0], g_opts.top);
  rulecheck::CheckReport report =
      rulecheck::check(host, rulecheck::builtin_rules(host.catalog_ptr()));

  if (json_output()) {
    report::Document doc("subgemini", "check");
    doc.set("host", netlist_summary(host));
    doc.set("rules_checked", report.rules_checked);
    doc.set("errors", report.errors);
    doc.set("warnings", report.warnings);
    json::Value violations = json::Value::array();
    for (const auto& v : report.violations) {
      json::Value one = json::Value::object();
      one.set("severity",
              v.severity == rulecheck::Severity::kError ? "error" : "warning");
      one.set("rule", v.rule);
      json::Value devices = json::Value::array();
      for (const auto& d : v.devices) devices.push(d);
      one.set("devices", std::move(devices));
      one.set("message", v.message);
      violations.push(std::move(one));
    }
    doc.set("violations", std::move(violations));
    if (g_metrics != nullptr) doc.set_metrics(g_metrics->collect());
    doc.write(std::cout);
    return report.errors == 0 ? 0 : 1;
  }

  std::printf("# %zu rules, %zu errors, %zu warnings\n", report.rules_checked,
              report.errors, report.warnings);
  for (const auto& v : report.violations) {
    std::printf("%s %s:",
                v.severity == rulecheck::Severity::kError ? "ERROR" : "WARN",
                v.rule.c_str());
    for (const auto& d : v.devices) std::printf(" %s", d.c_str());
    std::printf("  (%s)\n", v.message.c_str());
  }
  return report.errors == 0 ? 0 : 1;
}

/// Severity-based lint exit: 2 for errors, 1 for warnings when --fail-on
/// lowered the threshold, 0 otherwise (info findings never gate).
int lint_exit(const lint::LintReport& report) {
  if (report.has_errors()) return 2;
  if (report.has_warnings() && g_opts.fail_on == cli::FailOn::kWarn) return 1;
  return 0;
}

int cmd_lint(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  reject_extras(args, 1);
  const std::string& path = args[0];
  const std::string& top = g_opts.top;

  lint::LintOptions lo;
  lo.metrics = g_metrics;
  lint::LintReport report;
  std::optional<Netlist> flat;

  // Lint always parses in recovering mode — the whole point is to DESCRIBE
  // a sick deck, so card-level failures surface as "parse" findings rather
  // than aborting. Only unrecoverable inputs (missing file, nothing
  // salvageable) still throw to the usual exit-65 path in main.
  if (is_bench(path)) {
    DiagnosticSink sink;
    benchfmt::ReadOptions opts;
    opts.diagnostics = &sink;
    flat = std::move(benchfmt::read_file(path, opts).transistors);
    report.merge(lint::import_diagnostics(sink, lo));
    report.merge(lint::lint_netlist(*flat, lo));
  } else {
    DiagnosticSink sink;
    Design design = [&] {
      if (is_verilog(path)) {
        verilog::ReadOptions opts;
        opts.diagnostics = &sink;
        return verilog::read_file(path, opts);
      }
      spice::ReadOptions opts;
      opts.diagnostics = &sink;
      return spice::read_file(path, opts);
    }();
    report.merge(lint::import_diagnostics(sink, lo));
    std::string chosen = top;
    if (is_verilog(path) && chosen.empty() && design.module_count() > 0) {
      chosen = design
                   .module(ModuleId(
                       static_cast<std::uint32_t>(design.module_count() - 1)))
                   .name();
    }
    // Hierarchy checks, flatten (failures become "flatten" findings), and
    // the flat checks all live in lint_deck — the same pipeline the serve
    // daemon's lint op runs, so both surfaces agree on any deck.
    lint::DeckLint deck = lint::lint_deck(design, chosen, lo);
    report.merge(std::move(deck.report));
    flat = std::move(deck.netlist);
  }

  const int code = lint_exit(report);
  if (json_output()) {
    report::Document doc("subgemini", "lint");
    doc.set("input", path);
    doc.set("fail_on", g_opts.fail_on == cli::FailOn::kWarn ? "warn" : "error");
    if (flat.has_value()) doc.set("host", netlist_summary(*flat));
    doc.set("lint", report::to_json(report));
    if (g_metrics != nullptr) doc.set_metrics(g_metrics->collect());
    doc.write(std::cout);
    return code;
  }

  report.write_text(std::cout);
  return code;
}

int cmd_reduce(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  reject_extras(args, 1);
  Netlist host = load(args[0], g_opts.top);
  reduce::Reduced r = reduce::reduce_netlist(host);
  std::fprintf(stderr, "# %zu -> %zu devices\n", host.device_count(),
               r.netlist.device_count());

  if (json_output()) {
    report::Document doc("subgemini", "reduce");
    doc.set("host", netlist_summary(host));
    doc.set("devices_before", host.device_count());
    doc.set("devices_after", r.netlist.device_count());
    doc.set("netlist", netlist_text(args[0], r.netlist));
    if (g_metrics != nullptr) doc.set_metrics(g_metrics->collect());
    doc.write(std::cout);
    return 0;
  }

  emit(args[0], r.netlist);
  return 0;
}

int cmd_lvs(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  reject_extras(args, 2);
  Netlist left = load(args[0], g_opts.pattern_top);
  Netlist right = load(args[1], g_opts.top);
  lvs::LvsReport report = lvs::compare(left, right);

  if (json_output()) {
    report::Document doc("subgemini", "lvs");
    doc.set("left", netlist_summary(left));
    doc.set("right", netlist_summary(right));
    doc.set("clean", report.clean);
    doc.set("summary", report.summary);
    json::Value mismatches = json::Value::array();
    for (const lvs::Mismatch& m : report.mismatches) {
      json::Value one = json::Value::object();
      one.set("round", m.round);
      json::Value lhs = json::Value::array();
      for (const auto& n : m.left) lhs.push(n);
      json::Value rhs = json::Value::array();
      for (const auto& n : m.right) rhs.push(n);
      one.set("left", std::move(lhs));
      one.set("right", std::move(rhs));
      mismatches.push(std::move(one));
    }
    doc.set("mismatches", std::move(mismatches));
    if (g_metrics != nullptr) doc.set_metrics(g_metrics->collect());
    doc.write(std::cout);
    return report.clean ? 0 : 1;
  }

  std::printf("%s\n", report.summary.c_str());
  for (const lvs::Mismatch& m : report.mismatches) {
    std::printf("mismatch (round %zu):\n  left :", m.round);
    for (const auto& n : m.left) std::printf(" %s", n.c_str());
    std::printf("\n  right:");
    for (const auto& n : m.right) std::printf(" %s", n.c_str());
    std::printf("\n");
  }
  return report.clean ? 0 : 1;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  reject_extras(args, 1);
  Netlist host = load(args[0], g_opts.top);
  NetlistStats s = host.stats();

  if (json_output()) {
    report::Document doc("subgemini", "stats");
    doc.set("host", netlist_summary(host));
    doc.set("devices", s.device_count);
    doc.set("nets", s.net_count);
    doc.set("global_nets", s.global_net_count);
    doc.set("pins", s.pin_count);
    doc.set("max_net_degree", s.max_net_degree);
    json::Value by_type = json::Value::object();
    for (const auto& [type, count] : s.devices_by_type) {
      by_type.set(type, count);
    }
    doc.set("devices_by_type", std::move(by_type));
    if (g_metrics != nullptr) doc.set_metrics(g_metrics->collect());
    doc.write(std::cout);
    return 0;
  }

  std::printf("netlist %s\n", host.name().c_str());
  std::printf("  devices      %zu\n", s.device_count);
  std::printf("  nets         %zu (%zu global)\n", s.net_count,
              s.global_net_count);
  std::printf("  pins         %zu\n", s.pin_count);
  std::printf("  max degree   %zu\n", s.max_net_degree);
  for (const auto& [type, count] : s.devices_by_type) {
    std::printf("  %-12s %zu\n", type.c_str(), count);
  }
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::ServeOptions so;
  for (const std::string& arg : args) {
    serve::ServeOptions::HostSpec spec;
    // "name=path" registers under an explicit name; a bare path registers
    // under its file stem ("designs/chip.sp" -> "chip").
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos && eq > 0) {
      spec.name = arg.substr(0, eq);
      spec.path = arg.substr(eq + 1);
    } else {
      spec.path = arg;
      const std::size_t slash = arg.find_last_of('/');
      const std::size_t base = slash == std::string::npos ? 0 : slash + 1;
      const std::size_t dot = arg.find_last_of('.');
      spec.name = arg.substr(
          base, dot != std::string::npos && dot > base ? dot - base
                                                       : std::string::npos);
    }
    if (spec.name.empty() || spec.path.empty()) {
      throw UsageError{"bad serve host argument '" + arg + "'"};
    }
    spec.top = g_opts.top;
    so.hosts.push_back(std::move(spec));
  }
  so.workers = g_opts.serve_workers;
  so.max_pending = g_opts.max_pending;
  so.max_request_bytes = g_opts.max_request_bytes;
  so.request_timeout = g_opts.request_timeout;
  so.jobs = g_opts.jobs == 0 ? 1 : g_opts.jobs;
  so.core = g_opts.core;
  so.shard_target_devices = g_opts.shard_target_devices;
  so.lenient = g_opts.lenient;
  so.metrics = g_metrics;
  so.socket_path = g_opts.socket_path;
  serve::Server server(std::move(so));
  server.install_signal_handlers();
  return server.run();
}

int dispatch(const std::string& cmd, const std::vector<std::string>& args) {
  if (cmd == "find") return cmd_find(args);
  if (cmd == "extract") return cmd_extract(args);
  if (cmd == "analyze") return cmd_analyze(args);
  if (cmd == "compare") return cmd_compare(args);
  if (cmd == "lvs") return cmd_lvs(args);
  if (cmd == "check") return cmd_check(args);
  if (cmd == "lint") return cmd_lint(args);
  if (cmd == "reduce") return cmd_reduce(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "serve") return cmd_serve(args);
  return usage();
}

/// --metrics[=FILE]: write the counter-tree text dump after the command
/// finishes (even in json mode — the file is the flag's contract; the json
/// document additionally embeds the same snapshot).
void dump_metrics() {
  if (g_metrics == nullptr) return;
  const std::string text = g_metrics->collect().to_text();
  if (g_opts.metrics_path.empty()) {
    std::fwrite(text.data(), 1, text.size(), stderr);
    return;
  }
  std::FILE* out = std::fopen(g_opts.metrics_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "subgemini: cannot write metrics to '%s'\n",
                 g_opts.metrics_path.c_str());
    return;
  }
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  cli::ParsedArgs parsed = cli::parse_args(argc, argv, 2);
  if (!parsed.ok()) {
    std::fprintf(stderr, "subgemini: %s\n", parsed.error.c_str());
    return usage();
  }
  g_opts = parsed.options;
  try {
    // Fault-injection arming (SUBG_FAULT=<site>:<nth>); only meaningful in
    // -DSUBG_FAULTS=ON builds, but a malformed spec fails loudly anywhere.
    (void)subg::fault::arm_from_env();
  } catch (const subg::Error& e) {
    std::fprintf(stderr, "subgemini: %s\n", e.what());
    return 64;
  }
  std::optional<obs::Metrics> metrics;
  if (g_opts.metrics) {
    metrics.emplace();
    g_metrics = &*metrics;
  }
  try {
    const int code = dispatch(cmd, parsed.positionals);
    dump_metrics();
    return code;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "subgemini: %s\n", e.message.c_str());
    return usage();
  } catch (const subg::Error& e) {
    // Malformed input deck (sysexits EX_DATAERR).
    std::fprintf(stderr, "subgemini: %s\n", e.what());
    return 65;
  } catch (const std::exception& e) {
    // Anything else is a bug in subgemini itself (sysexits EX_SOFTWARE).
    std::fprintf(stderr, "subgemini: internal error: %s\n", e.what());
    return 70;
  }
}
