// subgemini — command-line front end for the library.
//
//   subgemini find <pattern.sp> <host.sp> [pattern_top] [host_top]
//       Find instances of a subcircuit. The pattern file's top is its
//       first .SUBCKT unless named; the host top defaults to "main"
//       (top-level cards).
//   subgemini extract <library.sp> <host.sp> [host_top]
//       Extract every .SUBCKT of the library deck from the host,
//       largest-first; writes the gate-level netlist as SPICE to stdout.
//   subgemini compare <a.sp> <b.sp> [a_top] [b_top]
//       Gemini netlist isomorphism check (LVS-lite). Exit 0 iff isomorphic.
//   subgemini check <host.sp> [host_top]
//       Run the built-in circuit rule library. Exit 0 iff clean of errors.
//   subgemini reduce <host.sp> [host_top]
//       Series/parallel device reduction; writes SPICE to stdout.
//   subgemini stats <host.sp> [host_top]
//       Netlist statistics.
//
// Global flags (anywhere after the command):
//   --timeout=<sec>   wall-clock budget for the search; an expired run
//                     reports what it found and exits 75
//   --jobs=<n>        parallel lanes for find/extract (default: hardware
//                     concurrency; --jobs=1 is the exact serial path —
//                     reports are identical at every value)
//   --lenient         best-effort parsing: malformed input lines become
//                     stderr diagnostics instead of fatal errors
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "benchfmt/benchfmt.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "lvs/lvs.hpp"
#include "match/matcher.hpp"
#include "reduce/reduce.hpp"
#include "rulecheck/rulecheck.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"
#include "verilog/verilog.hpp"

namespace {

using namespace subg;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  subgemini find <pattern.sp> <host.sp> [pattern_top] [host_top]\n"
      "  subgemini extract <library.sp> <host.sp> [host_top]\n"
      "  subgemini compare <a.sp> <b.sp> [a_top] [b_top]\n"
      "  subgemini lvs <layout.sp> <schematic.sp> [l_top] [s_top]\n"
      "  subgemini check <host.sp> [host_top]\n"
      "  subgemini reduce <host.sp> [host_top]\n"
      "  subgemini stats <host.sp> [host_top]\n"
      "\nInputs may be SPICE (.sp), structural Verilog (.v), or ISCAS "
      "(.bench).\n"
      "\nflags:\n"
      "  --timeout=<sec>  wall-clock budget; a run cut short exits 75\n"
      "  --jobs=<n>       parallel lanes for find/extract (default: hardware\n"
      "                   concurrency; 1 = serial; results are identical)\n"
      "  --lenient        recover from malformed input lines (diagnostics\n"
      "                   go to stderr) instead of failing\n"
      "\nexit codes: 0 success; 1 not isomorphic / rule violations;\n"
      "  64 usage; 65 malformed input; 70 internal error;\n"
      "  75 resource limit hit (results incomplete)\n");
  return 64;
}

/// Wall-clock budget shared by every search the invocation runs.
Budget g_budget;
/// Parallel lanes for find/extract (--jobs); 0 = hardware concurrency.
std::size_t g_jobs = 0;
/// Recovering-parse mode (--lenient).
bool g_lenient = false;

/// Print collected parse diagnostics; returns true if any were errors.
bool flush_diagnostics(const DiagnosticSink& sink) {
  for (const Diagnostic& d : sink.diagnostics()) {
    std::fprintf(stderr, "%s\n", d.to_string().c_str());
  }
  if (sink.dropped() > 0) {
    std::fprintf(stderr, "(%zu further diagnostics suppressed)\n",
                 sink.dropped());
  }
  return sink.error_count() > 0;
}

/// sysexits-style mapping: anything short of a complete sweep is a
/// temporary failure (75) so scripts cannot mistake partial results for
/// the full answer.
int outcome_exit(const RunStatus& status, int ok) {
  if (status.complete()) return ok;
  std::fprintf(stderr, "subgemini: search %s: %s\n",
               to_string(status.outcome), status.reason.c_str());
  return 75;
}

/// First .SUBCKT name of a design, or "main" when it only has top cards.
std::string default_top(const Design& design, const std::string& requested) {
  if (!requested.empty()) return requested;
  // Module 0 is the implicit "main"; prefer the first explicit subckt with
  // devices if main is empty.
  if (design.module_count() > 1 &&
      design.module(ModuleId(0)).device_count() == 0 &&
      design.module(ModuleId(0)).instance_count() == 0) {
    return design.module(ModuleId(1)).name();
  }
  return design.module(ModuleId(0)).name();
}

[[nodiscard]] bool is_verilog(const std::string& path) {
  return ends_with_icase(path, ".v") || ends_with_icase(path, ".sv") ||
         ends_with_icase(path, ".vh");
}

[[nodiscard]] bool is_bench(const std::string& path) {
  return ends_with_icase(path, ".bench");
}

/// Read a hierarchical design from SPICE or Verilog, honoring --lenient.
Design load_design(const std::string& path) {
  DiagnosticSink sink;
  DiagnosticSink* diags = g_lenient ? &sink : nullptr;
  Design design = [&] {
    if (is_verilog(path)) {
      verilog::ReadOptions opts;
      opts.diagnostics = diags;
      return verilog::read_file(path, opts);
    }
    spice::ReadOptions opts;
    opts.diagnostics = diags;
    return spice::read_file(path, opts);
  }();
  flush_diagnostics(sink);
  return design;
}

/// Load a netlist from SPICE, structural Verilog, or ISCAS .bench (by file
/// extension; .bench expands to transistor level).
Netlist load(const std::string& path, const std::string& top) {
  if (is_bench(path)) {
    DiagnosticSink sink;
    benchfmt::ReadOptions opts;
    opts.diagnostics = g_lenient ? &sink : nullptr;
    Netlist transistors = std::move(benchfmt::read_file(path, opts).transistors);
    flush_diagnostics(sink);
    return transistors;
  }
  Design design = load_design(path);
  if (is_verilog(path)) {
    // Verilog: prefer the last-defined module as top (conventional).
    std::string chosen = top;
    if (chosen.empty() && design.module_count() > 0) {
      chosen =
          design.module(ModuleId(static_cast<std::uint32_t>(
                             design.module_count() - 1)))
              .name();
    }
    return design.flatten(chosen);
  }
  return design.flatten(default_top(design, top));
}

/// Emit in the format matching the INPUT file the netlist came from.
void emit(const std::string& like_path, const Netlist& netlist) {
  if (is_verilog(like_path)) {
    verilog::write(std::cout, netlist);
  } else {
    spice::write(std::cout, netlist);
  }
}

int cmd_find(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  Netlist pattern = load(args[0], args.size() > 2 ? args[2] : "");
  Netlist host = load(args[1], args.size() > 3 ? args[3] : "");

  MatchOptions opts;
  opts.budget = g_budget;
  opts.jobs = g_jobs;
  SubgraphMatcher matcher(pattern, host, opts);
  MatchReport report = matcher.find_all();
  std::printf("# pattern %s (%zu devices), host %s (%zu devices)\n",
              pattern.name().c_str(), pattern.device_count(),
              host.name().c_str(), host.device_count());
  std::printf("# candidates %zu, instances %zu, %.2f ms (phase I %.2f)\n",
              report.phase1.candidates.size(), report.count(),
              report.total_seconds() * 1e3, report.phase1_seconds * 1e3);
  if (!report.status.complete()) {
    std::printf("# outcome %s: %s (%zu candidates skipped, %zu guesses "
                "abandoned)\n",
                to_string(report.status.outcome), report.status.reason.c_str(),
                report.status.candidates_skipped,
                report.status.guesses_abandoned);
  }
  for (std::size_t i = 0; i < report.count(); ++i) {
    const SubcircuitInstance& inst = report.instances[i];
    std::printf("instance %zu:", i);
    for (NetId port : pattern.ports()) {
      std::printf(" %s=%s", pattern.net_name(port).c_str(),
                  host.net_name(inst.net_image[port.index()]).c_str());
    }
    std::printf("\n  devices:");
    for (std::uint32_t d = 0; d < inst.device_image.size(); ++d) {
      std::printf(" %s", host.device_name(inst.device_image[d]).c_str());
    }
    std::printf("\n");
  }
  return outcome_exit(report.status, 0);
}

int cmd_extract(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  Design lib = load_design(args[0]);
  Netlist host = load(args[1], args.size() > 2 ? args[2] : "");

  std::vector<extract::LibraryCell> cells;
  for (std::uint32_t m = 0; m < lib.module_count(); ++m) {
    const Module& mod = lib.module(ModuleId(m));
    if (mod.ports().empty() || (mod.device_count() == 0 &&
                                mod.instance_count() == 0)) {
      continue;  // the implicit 'main', or an empty stub
    }
    cells.push_back(extract::LibraryCell{mod.name(), lib.flatten(mod.name())});
  }
  SUBG_CHECK_MSG(!cells.empty(), "library deck has no usable .SUBCKT");

  extract::ExtractOptions options;
  options.match.budget = g_budget;
  options.match.jobs = g_jobs;
  extract::ExtractResult result = extract::extract_gates(host, cells, options);
  std::fprintf(stderr, "# %zu transistors -> %zu devices (%zu unextracted)\n",
               result.report.devices_before, result.report.devices_after,
               result.report.unextracted_primitives);
  for (const auto& per : result.report.cells) {
    if (per.instances) {
      std::fprintf(stderr, "#   %-12s x %zu%s\n", per.cell.c_str(),
                   per.instances,
                   per.outcome == RunOutcome::kComplete ? "" : " (partial)");
    }
  }
  if (result.report.cells_skipped > 0) {
    std::fprintf(stderr, "#   %zu cell(s) not attempted\n",
                 result.report.cells_skipped);
  }
  emit(args[1], result.netlist);
  return outcome_exit(result.report.status, 0);
}

int cmd_compare(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  Netlist a = load(args[0], args.size() > 2 ? args[2] : "");
  Netlist b = load(args[1], args.size() > 3 ? args[3] : "");
  CompareOptions options;
  options.budget = g_budget;
  CompareResult r = compare_netlists(a, b, options);
  if (r.isomorphic) {
    std::printf("ISOMORPHIC (%zu refinement rounds, %zu individuations)\n",
                r.rounds, r.individuations);
    return 0;
  }
  std::printf("NOT ISOMORPHIC: %s\n", r.reason.c_str());
  if (r.outcome != RunOutcome::kComplete) {
    // The search was cut short, so "not isomorphic" is inconclusive.
    std::fprintf(stderr, "subgemini: comparison %s: %s\n",
                 to_string(r.outcome), r.reason.c_str());
    return 75;
  }
  return 1;
}

int cmd_check(const std::vector<std::string>& args) {
  if (args.size() < 1) return usage();
  Netlist host = load(args[0], args.size() > 1 ? args[1] : "");
  rulecheck::CheckReport report =
      rulecheck::check(host, rulecheck::builtin_rules(host.catalog_ptr()));
  std::printf("# %zu rules, %zu errors, %zu warnings\n", report.rules_checked,
              report.errors, report.warnings);
  for (const auto& v : report.violations) {
    std::printf("%s %s:",
                v.severity == rulecheck::Severity::kError ? "ERROR" : "WARN",
                v.rule.c_str());
    for (const auto& d : v.devices) std::printf(" %s", d.c_str());
    std::printf("  (%s)\n", v.message.c_str());
  }
  return report.errors == 0 ? 0 : 1;
}

int cmd_reduce(const std::vector<std::string>& args) {
  if (args.size() < 1) return usage();
  Netlist host = load(args[0], args.size() > 1 ? args[1] : "");
  reduce::Reduced r = reduce::reduce_netlist(host);
  std::fprintf(stderr, "# %zu -> %zu devices\n", host.device_count(),
               r.netlist.device_count());
  emit(args[0], r.netlist);
  return 0;
}

int cmd_lvs(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  Netlist left = load(args[0], args.size() > 2 ? args[2] : "");
  Netlist right = load(args[1], args.size() > 3 ? args[3] : "");
  lvs::LvsReport report = lvs::compare(left, right);
  std::printf("%s\n", report.summary.c_str());
  for (const lvs::Mismatch& m : report.mismatches) {
    std::printf("mismatch (round %zu):\n  left :", m.round);
    for (const auto& n : m.left) std::printf(" %s", n.c_str());
    std::printf("\n  right:");
    for (const auto& n : m.right) std::printf(" %s", n.c_str());
    std::printf("\n");
  }
  return report.clean ? 0 : 1;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.size() < 1) return usage();
  Netlist host = load(args[0], args.size() > 1 ? args[1] : "");
  NetlistStats s = host.stats();
  std::printf("netlist %s\n", host.name().c_str());
  std::printf("  devices      %zu\n", s.device_count);
  std::printf("  nets         %zu (%zu global)\n", s.net_count,
              s.global_net_count);
  std::printf("  pins         %zu\n", s.pin_count);
  std::printf("  max degree   %zu\n", s.max_net_degree);
  for (const auto& [type, count] : s.devices_by_type) {
    std::printf("  %-12s %zu\n", type.c_str(), count);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--timeout=", 0) == 0) {
      char* end = nullptr;
      const double seconds = std::strtod(arg.c_str() + 10, &end);
      if (end == nullptr || *end != '\0' || seconds <= 0) {
        std::fprintf(stderr, "subgemini: bad --timeout value '%s'\n",
                     arg.c_str() + 10);
        return usage();
      }
      g_budget.set_deadline_after(seconds);
      continue;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      const unsigned long jobs = std::strtoul(arg.c_str() + 7, &end, 10);
      if (end == nullptr || *end != '\0' || arg.size() == 7 || jobs == 0) {
        std::fprintf(stderr, "subgemini: bad --jobs value '%s'\n",
                     arg.c_str() + 7);
        return usage();
      }
      g_jobs = static_cast<std::size_t>(jobs);
      continue;
    }
    if (arg == "--lenient") {
      g_lenient = true;
      continue;
    }
    args.push_back(arg);
  }
  try {
    if (cmd == "find") return cmd_find(args);
    if (cmd == "extract") return cmd_extract(args);
    if (cmd == "compare") return cmd_compare(args);
    if (cmd == "lvs") return cmd_lvs(args);
    if (cmd == "check") return cmd_check(args);
    if (cmd == "reduce") return cmd_reduce(args);
    if (cmd == "stats") return cmd_stats(args);
  } catch (const subg::Error& e) {
    // Malformed input deck (sysexits EX_DATAERR).
    std::fprintf(stderr, "subgemini: %s\n", e.what());
    return 65;
  } catch (const std::exception& e) {
    // Anything else is a bug in subgemini itself (sysexits EX_SOFTWARE).
    std::fprintf(stderr, "subgemini: internal error: %s\n", e.what());
    return 70;
  }
  return usage();
}
