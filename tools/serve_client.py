#!/usr/bin/env python3
"""JSON-lines client for `subgemini serve` -- stdlib only.

Three ways to drive a match server:

  One request, answer on stdout (spawns a server over testdata):
    serve_client.py --spawn-host mux_host.sp status
    serve_client.py --spawn-host mux_host.sp find --pattern-file nand2.sp
    serve_client.py --spawn-host mux_host.sp analyze --pattern-file nand2.sp

  A batch file (one JSON request per line) against a running server's
  AF_UNIX socket, responses to stdout as JSON lines:
    serve_client.py --socket /tmp/subg.sock --batch requests.jsonl

  A library sweep: every .subckt cell of a SPICE library becomes one find
  request (the module-library sweep the daemon exists for):
    serve_client.py --spawn-host mux_host.sp sweep --library cells.sp

Exit codes: 0 all requests answered ok, 1 any request answered with an
error document, 2 usage / transport failure.
"""
import argparse
import json
import os
import re
import socket
import subprocess
import sys


class Transport:
    """One JSON-lines connection: send a request dict, read a response."""

    def send(self, request):
        raise NotImplementedError

    def recv(self):
        raise NotImplementedError

    def close(self):
        pass


class SpawnedServer(Transport):
    """`subgemini serve` as a child process over its stdin/stdout."""

    def __init__(self, binary, hosts, extra_flags):
        cmd = [binary, "serve"] + list(extra_flags) + list(hosts)
        self.proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

    def send(self, request):
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()

    def recv(self):
        line = self.proc.stdout.readline()
        if not line:
            raise EOFError("server closed its stdout")
        return json.loads(line)

    def close(self):
        try:
            self.send({"op": "shutdown"})
            self.recv()
        except (BrokenPipeError, EOFError, ValueError):
            pass
        self.proc.stdin.close()
        self.proc.wait(timeout=30)


class SocketClient(Transport):
    """A running server's AF_UNIX socket."""

    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.rfile = self.sock.makefile("r")

    def send(self, request):
        self.sock.sendall((json.dumps(request) + "\n").encode())

    def recv(self):
        line = self.rfile.readline()
        if not line:
            raise EOFError("server closed the connection")
        return json.loads(line)

    def close(self):
        self.rfile.close()
        self.sock.close()


def library_cells(text):
    """Cell names of every .subckt with at least one port (find needs a
    pattern with ports; portless decks are power-rail helpers)."""
    cells = []
    for line in text.splitlines():
        match = re.match(r"\s*\.subckt\s+(\S+)\s+\S+", line, re.IGNORECASE)
        if match:
            cells.append(match.group(1))
    return cells


def run_requests(transport, requests, out):
    """Send requests one at a time; return the number answered not-ok."""
    failures = 0
    for request in requests:
        transport.send(request)
        response = transport.recv()
        json.dump(response, out)
        out.write("\n")
        if not response.get("ok", False):
            failures += 1
    return failures


def build_requests(args):
    if args.command == "batch":
        with open(args.batch, encoding="utf-8") as f:
            return [json.loads(line) for line in f if line.strip()]
    if args.command == "sweep":
        with open(args.library, encoding="utf-8") as f:
            library = f.read()
        cells = library_cells(library)
        if not cells:
            raise SystemExit(f"{args.library}: no .subckt cells found")
        requests = []
        for i, cell in enumerate(cells):
            request = {"id": i, "op": "find", "pattern": library,
                       "pattern_top": cell}
            if args.host:
                request["host"] = args.host
            if args.timeout_ms is not None:
                request["timeout_ms"] = args.timeout_ms
            requests.append(request)
        return requests
    # Single-op commands.
    request = {"id": 0, "op": args.command}
    if args.pattern_file:
        with open(args.pattern_file, encoding="utf-8") as f:
            request["pattern"] = f.read()
    if args.pattern_top:
        request["pattern_top"] = args.pattern_top
    if args.host:
        request["host"] = args.host
    if args.timeout_ms is not None:
        request["timeout_ms"] = args.timeout_ms
    return [request]


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("command",
                        help="find | analyze | extract | lint | status | "
                             "shutdown | sweep | batch")
    parser.add_argument("--socket", help="AF_UNIX socket of a running server")
    parser.add_argument("--spawn-host", action="append", default=[],
                        metavar="[NAME=]FILE",
                        help="spawn a server child loading this host "
                             "(repeatable)")
    parser.add_argument("--binary", default="subgemini",
                        help="subgemini binary for --spawn-host "
                             "(default: from PATH)")
    parser.add_argument("--serve-flag", action="append", default=[],
                        metavar="FLAG",
                        help="extra flag for the spawned server (repeatable)")
    parser.add_argument("--pattern-file", help="find: SPICE pattern deck")
    parser.add_argument("--pattern-top", help="find: pattern top cell")
    parser.add_argument("--library", help="sweep: SPICE library deck")
    parser.add_argument("--batch", help="batch: JSON-lines request file")
    parser.add_argument("--host", help="loaded host name to match against")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="per-request budget in milliseconds")
    args = parser.parse_args(argv[1:])

    if args.command == "sweep" and not args.library:
        parser.error("sweep requires --library")
    if args.command == "batch" and not args.batch:
        parser.error("batch requires --batch")
    if bool(args.socket) == bool(args.spawn_host):
        parser.error("exactly one of --socket or --spawn-host is required")

    try:
        requests = build_requests(args)
    except (OSError, ValueError) as e:
        print(f"serve_client: {e}", file=sys.stderr)
        return 2

    try:
        if args.socket:
            transport = SocketClient(args.socket)
        else:
            transport = SpawnedServer(args.binary, args.spawn_host,
                                      args.serve_flag)
    except OSError as e:
        print(f"serve_client: cannot reach server: {e}", file=sys.stderr)
        return 2

    try:
        failures = run_requests(transport, requests, sys.stdout)
    except (EOFError, ValueError, BrokenPipeError) as e:
        print(f"serve_client: transport failed: {e}", file=sys.stderr)
        return 2
    finally:
        transport.close()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
