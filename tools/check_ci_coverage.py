#!/usr/bin/env python3
"""CI coverage audit: no test label or baseline bench may fall out of CI.

Two drift modes this script exists to catch:

  * A test suite gets a new ctest LABEL (tests/CMakeLists.txt) but no CI
    lane ever runs `ctest -L <label>` — the label silently becomes
    documentation instead of a gate.
  * A bench is recorded in BENCH_baseline.json but no lane invokes it —
    --subset gating (bench-gate runs the small hosts, scale-gate runs the
    million-device bench_shard) makes per-lane checks partial BY DESIGN,
    so the union has to be audited somewhere. This is that somewhere.

The checks are textual on purpose: labels are read from the LABELS
properties in tests/CMakeLists.txt, exercised labels from `ctest ... -L
<label>` occurrences across every workflow, and bench invocations from
`bench/<name>` occurrences. No YAML or CMake parser — stdlib only, same
as check_bench_baseline.py — and each extractor refuses to return an
empty set, so a syntax change that breaks the regexes fails the audit
instead of vacuously passing it.

Usage: check_ci_coverage.py [repo-root]     (default: the script's parent)
Exits 0 when coverage is complete, 1 listing every hole.
"""

import json
import re
import sys
from pathlib import Path


def defined_labels(root):
    """Every label attached to a test via PROPERTIES LABELS."""
    text = (root / "tests" / "CMakeLists.txt").read_text(encoding="utf-8")
    labels = set()
    for match in re.finditer(r'LABELS\s+"?([A-Za-z0-9_;-]+)"?', text):
        labels.update(part for part in match.group(1).split(";") if part)
    if not labels:
        sys.exit("check_ci_coverage: no LABELS found in tests/CMakeLists.txt "
                 "(extractor broken?)")
    return labels


def workflow_text(root):
    paths = sorted((root / ".github" / "workflows").glob("*.yml"))
    if not paths:
        sys.exit("check_ci_coverage: no workflows under .github/workflows")
    return "\n".join(p.read_text(encoding="utf-8") for p in paths)


def exercised_labels(text):
    """Labels some workflow step actually selects with ctest -L."""
    labels = set(re.findall(r"ctest[^\n]*\s-L\s+([A-Za-z0-9_-]+)", text))
    if not labels:
        sys.exit("check_ci_coverage: no `ctest -L` steps found in any "
                 "workflow (extractor broken?)")
    return labels


def baseline_benches(root):
    doc = json.loads((root / "BENCH_baseline.json").read_text(encoding="utf-8"))
    benches = set(doc["benches"])
    if not benches:
        sys.exit("check_ci_coverage: BENCH_baseline.json lists no benches")
    return benches


def invoked_benches(text):
    """Bench binaries some workflow step runs (./build/bench/<name> ...)."""
    return set(re.findall(r"\./build/bench/(bench_[A-Za-z0-9_]+)", text))


def main(argv):
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    text = workflow_text(root)

    problems = []
    unexercised = defined_labels(root) - exercised_labels(text)
    for label in sorted(unexercised):
        problems.append(f"ctest label `{label}` is defined in "
                        f"tests/CMakeLists.txt but no workflow runs "
                        f"`ctest -L {label}`")
    unrun = baseline_benches(root) - invoked_benches(text)
    for bench in sorted(unrun):
        problems.append(f"bench `{bench}` is gated in BENCH_baseline.json "
                        f"but no workflow invokes ./build/bench/{bench}")

    if problems:
        for p in problems:
            print(f"COVERAGE HOLE: {p}")
        return 1
    print(f"ci coverage ok: {len(defined_labels(root))} labels exercised, "
          f"{len(baseline_benches(root))} benches invoked")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
