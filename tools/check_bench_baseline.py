#!/usr/bin/env python3
"""CI bench-regression gate: compare bench JSON output against a baseline.

The quick-mode benches (bench_linearity --quick, bench_table2 --quick) emit
a "counters" member of deterministic work counters per (circuit, cell) row —
Phase I rounds and relabel contributions, label-cache hits/misses, Phase II
passes, bindings, guesses, backtracks, and edge-visit counts. These are
identical on every machine, at every --jobs value, and in both --core
layouts, so the gate compares them EXACTLY: any drift is an algorithmic
change that must be acknowledged by regenerating the baseline.

Wall-clock members ("timings") are machine artifacts and are only reported,
never gated.

Usage:
  check_bench_baseline.py BASELINE.json OUTPUT.json...           # gate
  check_bench_baseline.py --subset BASELINE.json OUTPUT.json...  # partial gate
  check_bench_baseline.py --update BASELINE.json OUTPUT.json...  # regenerate

Each OUTPUT.json is one bench document (report::Document schema v1) whose
"tool" member names the bench. Exits 0 when every output's counters match
the baseline, 1 on any mismatch or missing bench.

By default every bench in the baseline must have an output — the gate exists
to catch silent coverage loss, not just drift. CI lanes that deliberately
split the benches (the scale-gate lane runs only bench_shard; bench-gate
runs the rest) pass --subset to gate just the outputs they produced;
tools/check_ci_coverage.py separately asserts that the union of all lanes
still covers every baseline bench, so --subset never hides a dropped bench.
--subset is a gating flag only: --update always replaces the whole baseline
and therefore needs the full output set.

Stdlib only — runs on a bare CI python3.
"""

import json
import sys

GATED_KEYS = (
    "cv", "found", "expected", "rounds", "relabel_ops", "host_relabel_ops",
    "cache_hits", "cache_misses", "passes", "bindings", "guesses",
    "backtracks", "expansion_ops", "domain_prunes", "nogood_hits",
    "trail_undos",
    # ECO patching counters (bench_eco patched rows only; absent elsewhere,
    # and None == None keeps non-ECO rows unaffected).
    "eco_patched_devices", "eco_patched_nets", "eco_renames",
    "eco_invalidated_labels", "eco_compactions",
    # Static-analyzer counters (path-label prunes in the Phase II prefilter,
    # automorphism-folded enumeration skips, certificate short-circuits).
    "path_label_prunes", "symmetry_skips", "infeasible_shortcuts",
    # Sharded-sweep counters: the region plan is a pure function of the host
    # and the round-0 skip rule a pure function of (plan, pattern), so these
    # are exact too. Zero on monolithic rows.
    "shards_total", "shards_skipped", "shards_prefilter_rejects",
)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def row_key(row):
    return (row.get("circuit", "?"), row.get("cell", "?"))


def check_counters(tool, baseline_rows, output_rows):
    """Exact comparison; returns a list of human-readable problems."""
    problems = []
    base_by_key = {row_key(r): r for r in baseline_rows}
    out_by_key = {row_key(r): r for r in output_rows}
    for key in base_by_key:
        if key not in out_by_key:
            problems.append(f"{tool}: row {key} missing from output")
    for key in out_by_key:
        if key not in base_by_key:
            problems.append(f"{tool}: row {key} not in baseline "
                            "(workload changed? regenerate with --update)")
    for key, base in base_by_key.items():
        out = out_by_key.get(key)
        if out is None:
            continue
        for field in GATED_KEYS:
            bv, ov = base.get(field), out.get(field)
            if bv != ov:
                problems.append(
                    f"{tool}: {key[0]}/{key[1]} {field}: "
                    f"baseline {bv} != output {ov}")
    return problems


def report_timings(tool, baseline_rows, output_rows):
    """Advisory: print relative drift of per-row wall-clock times."""
    base_by_key = {row_key(r): r for r in baseline_rows}
    for out in output_rows:
        base = base_by_key.get(row_key(out))
        if base is None:
            continue
        bt = float(base.get("phase1_ms", 0)) + float(base.get("phase2_ms", 0))
        ot = float(out.get("phase1_ms", 0)) + float(out.get("phase2_ms", 0))
        if bt <= 0:
            continue
        delta = 100.0 * (ot - bt) / bt
        marker = "  <-- advisory: large timing drift" if abs(delta) > 50 else ""
        print(f"  timing {row_key(out)[0]}/{row_key(out)[1]}: "
              f"{bt:.2f} ms -> {ot:.2f} ms ({delta:+.0f}%){marker}")


def main(argv):
    args = list(argv[1:])
    update = False
    subset = False
    while args and args[0] in ("--update", "--subset"):
        if args[0] == "--update":
            update = True
        else:
            subset = True
        args = args[1:]
    if update and subset:
        print("error: --subset only applies to gating; --update replaces "
              "the whole baseline and needs the full output set",
              file=sys.stderr)
        return 2
    if len(args) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline_path, output_paths = args[0], args[1:]
    outputs = {}
    for path in output_paths:
        doc = load(path)
        tool = doc.get("tool")
        if not tool:
            print(f"error: {path} has no 'tool' member", file=sys.stderr)
            return 2
        if "counters" not in doc:
            print(f"error: {path} ({tool}) has no 'counters' member "
                  "(did the bench run with --quick --format=json?)",
                  file=sys.stderr)
            return 2
        if not doc.get("quick", False):
            print(f"error: {path} ({tool}) was not a --quick run; the "
                  "baseline only covers quick workloads", file=sys.stderr)
            return 2
        outputs[tool] = doc

    if update:
        baseline = {
            "schema_version": 1,
            "comment": "Deterministic bench work counters; regenerate with "
                       "tools/check_bench_baseline.py --update after an "
                       "intentional algorithmic change.",
            "benches": {
                tool: {
                    "counters": doc["counters"],
                    "timings": doc.get("timings", []),
                }
                for tool, doc in sorted(outputs.items())
            },
        }
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {baseline_path} ({len(outputs)} bench(es))")
        return 0

    baseline = load(baseline_path)
    benches = baseline.get("benches", {})
    problems = []
    for tool, doc in sorted(outputs.items()):
        base = benches.get(tool)
        if base is None:
            problems.append(f"{tool}: not in baseline "
                            "(regenerate with --update)")
            continue
        print(f"== {tool}")
        problems += check_counters(tool, base.get("counters", []),
                                   doc["counters"])
        report_timings(tool, base.get("timings", []), doc.get("timings", []))
    if not subset:
        for tool in benches:
            if tool not in outputs:
                problems.append(
                    f"{tool}: baseline entry has no output to check")

    if problems:
        print(f"\nFAIL: {len(problems)} counter mismatch(es):")
        for p in problems:
            print(f"  {p}")
        print("\nIf the drift is an intentional algorithmic change, "
              "regenerate the baseline:\n"
              "  tools/check_bench_baseline.py --update BENCH_baseline.json "
              "<outputs...>")
        return 1
    print(f"\nOK: {len(outputs)} bench(es) match the baseline exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
