file(REMOVE_RECURSE
  "libsubg_reduce.a"
)
