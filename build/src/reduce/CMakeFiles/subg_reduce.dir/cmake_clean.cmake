file(REMOVE_RECURSE
  "CMakeFiles/subg_reduce.dir/reduce.cpp.o"
  "CMakeFiles/subg_reduce.dir/reduce.cpp.o.d"
  "libsubg_reduce.a"
  "libsubg_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
