# Empty dependencies file for subg_reduce.
# This may be replaced when dependencies are built.
