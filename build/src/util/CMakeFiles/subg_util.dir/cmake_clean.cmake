file(REMOVE_RECURSE
  "CMakeFiles/subg_util.dir/log.cpp.o"
  "CMakeFiles/subg_util.dir/log.cpp.o.d"
  "CMakeFiles/subg_util.dir/strings.cpp.o"
  "CMakeFiles/subg_util.dir/strings.cpp.o.d"
  "libsubg_util.a"
  "libsubg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
