# Empty dependencies file for subg_util.
# This may be replaced when dependencies are built.
