file(REMOVE_RECURSE
  "libsubg_util.a"
)
