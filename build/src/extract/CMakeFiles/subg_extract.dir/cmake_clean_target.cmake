file(REMOVE_RECURSE
  "libsubg_extract.a"
)
