file(REMOVE_RECURSE
  "CMakeFiles/subg_extract.dir/extract.cpp.o"
  "CMakeFiles/subg_extract.dir/extract.cpp.o.d"
  "libsubg_extract.a"
  "libsubg_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
