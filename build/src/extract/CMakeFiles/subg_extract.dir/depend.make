# Empty dependencies file for subg_extract.
# This may be replaced when dependencies are built.
