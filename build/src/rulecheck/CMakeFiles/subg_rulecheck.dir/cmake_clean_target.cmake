file(REMOVE_RECURSE
  "libsubg_rulecheck.a"
)
