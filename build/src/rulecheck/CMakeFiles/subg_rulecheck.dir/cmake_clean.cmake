file(REMOVE_RECURSE
  "CMakeFiles/subg_rulecheck.dir/rulecheck.cpp.o"
  "CMakeFiles/subg_rulecheck.dir/rulecheck.cpp.o.d"
  "libsubg_rulecheck.a"
  "libsubg_rulecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_rulecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
