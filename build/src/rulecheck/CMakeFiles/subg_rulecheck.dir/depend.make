# Empty dependencies file for subg_rulecheck.
# This may be replaced when dependencies are built.
