# Empty dependencies file for subg_graph.
# This may be replaced when dependencies are built.
