file(REMOVE_RECURSE
  "CMakeFiles/subg_graph.dir/circuit_graph.cpp.o"
  "CMakeFiles/subg_graph.dir/circuit_graph.cpp.o.d"
  "libsubg_graph.a"
  "libsubg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
