file(REMOVE_RECURSE
  "libsubg_graph.a"
)
