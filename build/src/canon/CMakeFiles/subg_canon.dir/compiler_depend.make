# Empty compiler generated dependencies file for subg_canon.
# This may be replaced when dependencies are built.
