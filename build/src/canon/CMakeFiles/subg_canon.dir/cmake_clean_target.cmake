file(REMOVE_RECURSE
  "libsubg_canon.a"
)
