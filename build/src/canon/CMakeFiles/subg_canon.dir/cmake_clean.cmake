file(REMOVE_RECURSE
  "CMakeFiles/subg_canon.dir/canon.cpp.o"
  "CMakeFiles/subg_canon.dir/canon.cpp.o.d"
  "libsubg_canon.a"
  "libsubg_canon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_canon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
