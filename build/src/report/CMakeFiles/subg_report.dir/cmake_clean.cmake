file(REMOVE_RECURSE
  "CMakeFiles/subg_report.dir/report.cpp.o"
  "CMakeFiles/subg_report.dir/report.cpp.o.d"
  "libsubg_report.a"
  "libsubg_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
