file(REMOVE_RECURSE
  "libsubg_report.a"
)
