# Empty dependencies file for subg_report.
# This may be replaced when dependencies are built.
