file(REMOVE_RECURSE
  "libsubg_netlist.a"
)
