file(REMOVE_RECURSE
  "CMakeFiles/subg_netlist.dir/catalog.cpp.o"
  "CMakeFiles/subg_netlist.dir/catalog.cpp.o.d"
  "CMakeFiles/subg_netlist.dir/design.cpp.o"
  "CMakeFiles/subg_netlist.dir/design.cpp.o.d"
  "CMakeFiles/subg_netlist.dir/netlist.cpp.o"
  "CMakeFiles/subg_netlist.dir/netlist.cpp.o.d"
  "libsubg_netlist.a"
  "libsubg_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
