# Empty compiler generated dependencies file for subg_netlist.
# This may be replaced when dependencies are built.
