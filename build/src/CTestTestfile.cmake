# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netlist")
subdirs("graph")
subdirs("match")
subdirs("baseline")
subdirs("gemini")
subdirs("lvs")
subdirs("canon")
subdirs("sim")
subdirs("cells")
subdirs("benchfmt")
subdirs("gen")
subdirs("reduce")
subdirs("spice")
subdirs("verilog")
subdirs("extract")
subdirs("techmap")
subdirs("rulecheck")
subdirs("report")
