# Empty compiler generated dependencies file for subg_baseline.
# This may be replaced when dependencies are built.
