file(REMOVE_RECURSE
  "CMakeFiles/subg_baseline.dir/ullmann.cpp.o"
  "CMakeFiles/subg_baseline.dir/ullmann.cpp.o.d"
  "CMakeFiles/subg_baseline.dir/vf2.cpp.o"
  "CMakeFiles/subg_baseline.dir/vf2.cpp.o.d"
  "libsubg_baseline.a"
  "libsubg_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
