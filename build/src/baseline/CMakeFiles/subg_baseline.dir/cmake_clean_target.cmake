file(REMOVE_RECURSE
  "libsubg_baseline.a"
)
