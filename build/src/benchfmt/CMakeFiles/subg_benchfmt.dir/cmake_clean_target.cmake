file(REMOVE_RECURSE
  "libsubg_benchfmt.a"
)
