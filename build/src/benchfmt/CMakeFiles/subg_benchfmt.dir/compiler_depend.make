# Empty compiler generated dependencies file for subg_benchfmt.
# This may be replaced when dependencies are built.
