file(REMOVE_RECURSE
  "CMakeFiles/subg_benchfmt.dir/benchfmt.cpp.o"
  "CMakeFiles/subg_benchfmt.dir/benchfmt.cpp.o.d"
  "libsubg_benchfmt.a"
  "libsubg_benchfmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_benchfmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
