file(REMOVE_RECURSE
  "CMakeFiles/subg_gen.dir/generators.cpp.o"
  "CMakeFiles/subg_gen.dir/generators.cpp.o.d"
  "libsubg_gen.a"
  "libsubg_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
