file(REMOVE_RECURSE
  "libsubg_gen.a"
)
