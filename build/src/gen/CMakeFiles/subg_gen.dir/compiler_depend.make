# Empty compiler generated dependencies file for subg_gen.
# This may be replaced when dependencies are built.
