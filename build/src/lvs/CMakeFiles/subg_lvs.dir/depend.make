# Empty dependencies file for subg_lvs.
# This may be replaced when dependencies are built.
