file(REMOVE_RECURSE
  "CMakeFiles/subg_lvs.dir/lvs.cpp.o"
  "CMakeFiles/subg_lvs.dir/lvs.cpp.o.d"
  "libsubg_lvs.a"
  "libsubg_lvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_lvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
