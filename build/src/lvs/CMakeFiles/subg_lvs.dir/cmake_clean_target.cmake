file(REMOVE_RECURSE
  "libsubg_lvs.a"
)
