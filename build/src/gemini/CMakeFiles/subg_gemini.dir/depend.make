# Empty dependencies file for subg_gemini.
# This may be replaced when dependencies are built.
