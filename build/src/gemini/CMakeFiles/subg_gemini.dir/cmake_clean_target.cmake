file(REMOVE_RECURSE
  "libsubg_gemini.a"
)
