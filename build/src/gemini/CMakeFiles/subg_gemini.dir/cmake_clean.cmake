file(REMOVE_RECURSE
  "CMakeFiles/subg_gemini.dir/gemini.cpp.o"
  "CMakeFiles/subg_gemini.dir/gemini.cpp.o.d"
  "libsubg_gemini.a"
  "libsubg_gemini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_gemini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
