# Empty dependencies file for subg_sim.
# This may be replaced when dependencies are built.
