file(REMOVE_RECURSE
  "libsubg_sim.a"
)
