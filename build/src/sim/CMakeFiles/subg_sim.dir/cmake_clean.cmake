file(REMOVE_RECURSE
  "CMakeFiles/subg_sim.dir/sim.cpp.o"
  "CMakeFiles/subg_sim.dir/sim.cpp.o.d"
  "libsubg_sim.a"
  "libsubg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
