# Empty dependencies file for subg_match.
# This may be replaced when dependencies are built.
