file(REMOVE_RECURSE
  "CMakeFiles/subg_match.dir/host_labels.cpp.o"
  "CMakeFiles/subg_match.dir/host_labels.cpp.o.d"
  "CMakeFiles/subg_match.dir/matcher.cpp.o"
  "CMakeFiles/subg_match.dir/matcher.cpp.o.d"
  "CMakeFiles/subg_match.dir/phase1.cpp.o"
  "CMakeFiles/subg_match.dir/phase1.cpp.o.d"
  "CMakeFiles/subg_match.dir/phase2.cpp.o"
  "CMakeFiles/subg_match.dir/phase2.cpp.o.d"
  "CMakeFiles/subg_match.dir/verify.cpp.o"
  "CMakeFiles/subg_match.dir/verify.cpp.o.d"
  "libsubg_match.a"
  "libsubg_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
