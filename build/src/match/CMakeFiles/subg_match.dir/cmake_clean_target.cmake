file(REMOVE_RECURSE
  "libsubg_match.a"
)
