# Empty compiler generated dependencies file for subg_spice.
# This may be replaced when dependencies are built.
