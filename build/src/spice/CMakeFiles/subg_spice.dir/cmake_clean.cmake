file(REMOVE_RECURSE
  "CMakeFiles/subg_spice.dir/spice.cpp.o"
  "CMakeFiles/subg_spice.dir/spice.cpp.o.d"
  "libsubg_spice.a"
  "libsubg_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
