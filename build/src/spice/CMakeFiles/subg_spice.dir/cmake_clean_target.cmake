file(REMOVE_RECURSE
  "libsubg_spice.a"
)
