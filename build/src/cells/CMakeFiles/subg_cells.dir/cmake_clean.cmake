file(REMOVE_RECURSE
  "CMakeFiles/subg_cells.dir/cells.cpp.o"
  "CMakeFiles/subg_cells.dir/cells.cpp.o.d"
  "libsubg_cells.a"
  "libsubg_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
