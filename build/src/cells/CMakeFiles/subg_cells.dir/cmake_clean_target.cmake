file(REMOVE_RECURSE
  "libsubg_cells.a"
)
