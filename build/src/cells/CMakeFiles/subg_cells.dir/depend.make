# Empty dependencies file for subg_cells.
# This may be replaced when dependencies are built.
