file(REMOVE_RECURSE
  "CMakeFiles/subg_techmap.dir/techmap.cpp.o"
  "CMakeFiles/subg_techmap.dir/techmap.cpp.o.d"
  "libsubg_techmap.a"
  "libsubg_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
