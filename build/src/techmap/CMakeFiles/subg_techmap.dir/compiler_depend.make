# Empty compiler generated dependencies file for subg_techmap.
# This may be replaced when dependencies are built.
