file(REMOVE_RECURSE
  "libsubg_techmap.a"
)
