# Empty dependencies file for subg_verilog.
# This may be replaced when dependencies are built.
