file(REMOVE_RECURSE
  "libsubg_verilog.a"
)
