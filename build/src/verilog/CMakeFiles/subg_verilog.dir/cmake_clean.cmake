file(REMOVE_RECURSE
  "CMakeFiles/subg_verilog.dir/verilog.cpp.o"
  "CMakeFiles/subg_verilog.dir/verilog.cpp.o.d"
  "libsubg_verilog.a"
  "libsubg_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subg_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
