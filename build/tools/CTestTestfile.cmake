# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_stats "/root/repo/build/tools/subgemini" "stats" "/root/repo/testdata/mux_host.sp")
set_tests_properties(cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_find "/root/repo/build/tools/subgemini" "find" "/root/repo/testdata/cells.sp" "/root/repo/testdata/mux_host.sp" "nand2")
set_tests_properties(cli_find PROPERTIES  PASS_REGULAR_EXPRESSION "instances 3" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_find_bench_host "/root/repo/build/tools/subgemini" "find" "/root/repo/testdata/cells.sp" "/root/repo/testdata/c17.bench" "nand2")
set_tests_properties(cli_find_bench_host PROPERTIES  PASS_REGULAR_EXPRESSION "instances 6" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_extract "/root/repo/build/tools/subgemini" "extract" "/root/repo/testdata/cells.sp" "/root/repo/testdata/mux_host.sp")
set_tests_properties(cli_extract PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare_self "/root/repo/build/tools/subgemini" "compare" "/root/repo/testdata/mux_host.sp" "/root/repo/testdata/mux_host.sp")
set_tests_properties(cli_compare_self PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare_differs "/root/repo/build/tools/subgemini" "compare" "/root/repo/testdata/plain_inv.sp" "/root/repo/testdata/fingered_inv.sp")
set_tests_properties(cli_compare_differs PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_lvs_reduction "/root/repo/build/tools/subgemini" "lvs" "/root/repo/testdata/fingered_inv.sp" "/root/repo/testdata/plain_inv.sp")
set_tests_properties(cli_lvs_reduction PROPERTIES  PASS_REGULAR_EXPRESSION "netlists match" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_check "/root/repo/build/tools/subgemini" "check" "/root/repo/testdata/mux_host.sp")
set_tests_properties(cli_check PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reduce "/root/repo/build/tools/subgemini" "reduce" "/root/repo/testdata/fingered_inv.sp")
set_tests_properties(cli_reduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/subgemini")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
