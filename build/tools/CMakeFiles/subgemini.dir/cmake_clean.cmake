file(REMOVE_RECURSE
  "CMakeFiles/subgemini.dir/subgemini.cpp.o"
  "CMakeFiles/subgemini.dir/subgemini.cpp.o.d"
  "subgemini"
  "subgemini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgemini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
