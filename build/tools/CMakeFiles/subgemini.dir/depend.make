# Empty dependencies file for subgemini.
# This may be replaced when dependencies are built.
