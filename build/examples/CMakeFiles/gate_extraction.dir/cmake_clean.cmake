file(REMOVE_RECURSE
  "CMakeFiles/gate_extraction.dir/gate_extraction.cpp.o"
  "CMakeFiles/gate_extraction.dir/gate_extraction.cpp.o.d"
  "gate_extraction"
  "gate_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
