# Empty dependencies file for gate_extraction.
# This may be replaced when dependencies are built.
