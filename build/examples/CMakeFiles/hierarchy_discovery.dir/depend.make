# Empty dependencies file for hierarchy_discovery.
# This may be replaced when dependencies are built.
