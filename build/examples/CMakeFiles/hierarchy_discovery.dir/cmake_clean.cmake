file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_discovery.dir/hierarchy_discovery.cpp.o"
  "CMakeFiles/hierarchy_discovery.dir/hierarchy_discovery.cpp.o.d"
  "hierarchy_discovery"
  "hierarchy_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
