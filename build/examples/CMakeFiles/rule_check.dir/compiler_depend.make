# Empty compiler generated dependencies file for rule_check.
# This may be replaced when dependencies are built.
