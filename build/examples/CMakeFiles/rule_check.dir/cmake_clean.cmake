file(REMOVE_RECURSE
  "CMakeFiles/rule_check.dir/rule_check.cpp.o"
  "CMakeFiles/rule_check.dir/rule_check.cpp.o.d"
  "rule_check"
  "rule_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
