# Empty compiler generated dependencies file for technology_mapping.
# This may be replaced when dependencies are built.
