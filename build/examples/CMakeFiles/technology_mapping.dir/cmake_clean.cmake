file(REMOVE_RECURSE
  "CMakeFiles/technology_mapping.dir/technology_mapping.cpp.o"
  "CMakeFiles/technology_mapping.dir/technology_mapping.cpp.o.d"
  "technology_mapping"
  "technology_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technology_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
