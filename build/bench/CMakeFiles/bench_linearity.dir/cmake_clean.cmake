file(REMOVE_RECURSE
  "CMakeFiles/bench_linearity.dir/bench_linearity.cpp.o"
  "CMakeFiles/bench_linearity.dir/bench_linearity.cpp.o.d"
  "bench_linearity"
  "bench_linearity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linearity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
