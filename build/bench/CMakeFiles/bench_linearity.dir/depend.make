# Empty dependencies file for bench_linearity.
# This may be replaced when dependencies are built.
