file(REMOVE_RECURSE
  "CMakeFiles/bench_ambiguity.dir/bench_ambiguity.cpp.o"
  "CMakeFiles/bench_ambiguity.dir/bench_ambiguity.cpp.o.d"
  "bench_ambiguity"
  "bench_ambiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ambiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
