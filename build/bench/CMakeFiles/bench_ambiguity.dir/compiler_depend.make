# Empty compiler generated dependencies file for bench_ambiguity.
# This may be replaced when dependencies are built.
