file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline.dir/bench_baseline.cpp.o"
  "CMakeFiles/bench_baseline.dir/bench_baseline.cpp.o.d"
  "bench_baseline"
  "bench_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
