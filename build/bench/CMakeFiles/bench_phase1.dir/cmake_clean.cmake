file(REMOVE_RECURSE
  "CMakeFiles/bench_phase1.dir/bench_phase1.cpp.o"
  "CMakeFiles/bench_phase1.dir/bench_phase1.cpp.o.d"
  "bench_phase1"
  "bench_phase1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
