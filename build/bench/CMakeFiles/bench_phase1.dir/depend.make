# Empty dependencies file for bench_phase1.
# This may be replaced when dependencies are built.
