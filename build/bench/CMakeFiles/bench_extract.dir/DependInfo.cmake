
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_extract.cpp" "bench/CMakeFiles/bench_extract.dir/bench_extract.cpp.o" "gcc" "bench/CMakeFiles/bench_extract.dir/bench_extract.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/extract/CMakeFiles/subg_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/subg_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/subg_report.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/subg_match.dir/DependInfo.cmake"
  "/root/repo/build/src/gemini/CMakeFiles/subg_gemini.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/subg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/subg_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/subg_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/subg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
