file(REMOVE_RECURSE
  "CMakeFiles/bench_extract.dir/bench_extract.cpp.o"
  "CMakeFiles/bench_extract.dir/bench_extract.cpp.o.d"
  "bench_extract"
  "bench_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
