# Empty dependencies file for bench_extract.
# This may be replaced when dependencies are built.
