# Empty compiler generated dependencies file for bench_special_signals.
# This may be replaced when dependencies are built.
