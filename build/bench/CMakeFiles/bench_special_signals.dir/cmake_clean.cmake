file(REMOVE_RECURSE
  "CMakeFiles/bench_special_signals.dir/bench_special_signals.cpp.o"
  "CMakeFiles/bench_special_signals.dir/bench_special_signals.cpp.o.d"
  "bench_special_signals"
  "bench_special_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_special_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
