file(REMOVE_RECURSE
  "CMakeFiles/canon_test.dir/canon/canon_test.cpp.o"
  "CMakeFiles/canon_test.dir/canon/canon_test.cpp.o.d"
  "canon_test"
  "canon_test.pdb"
  "canon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
