# Empty compiler generated dependencies file for canon_test.
# This may be replaced when dependencies are built.
