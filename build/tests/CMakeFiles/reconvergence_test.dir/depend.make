# Empty dependencies file for reconvergence_test.
# This may be replaced when dependencies are built.
