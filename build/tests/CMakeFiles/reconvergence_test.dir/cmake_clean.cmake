file(REMOVE_RECURSE
  "CMakeFiles/reconvergence_test.dir/match/reconvergence_test.cpp.o"
  "CMakeFiles/reconvergence_test.dir/match/reconvergence_test.cpp.o.d"
  "reconvergence_test"
  "reconvergence_test.pdb"
  "reconvergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconvergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
