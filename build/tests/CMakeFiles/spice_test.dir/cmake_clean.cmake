file(REMOVE_RECURSE
  "CMakeFiles/spice_test.dir/spice/spice_test.cpp.o"
  "CMakeFiles/spice_test.dir/spice/spice_test.cpp.o.d"
  "spice_test"
  "spice_test.pdb"
  "spice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
