file(REMOVE_RECURSE
  "CMakeFiles/gemini_test.dir/gemini/gemini_test.cpp.o"
  "CMakeFiles/gemini_test.dir/gemini/gemini_test.cpp.o.d"
  "gemini_test"
  "gemini_test.pdb"
  "gemini_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
