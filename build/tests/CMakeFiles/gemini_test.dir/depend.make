# Empty dependencies file for gemini_test.
# This may be replaced when dependencies are built.
