# Empty compiler generated dependencies file for graph_edge_cases_test.
# This may be replaced when dependencies are built.
