file(REMOVE_RECURSE
  "CMakeFiles/graph_edge_cases_test.dir/graph/graph_edge_cases_test.cpp.o"
  "CMakeFiles/graph_edge_cases_test.dir/graph/graph_edge_cases_test.cpp.o.d"
  "graph_edge_cases_test"
  "graph_edge_cases_test.pdb"
  "graph_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
