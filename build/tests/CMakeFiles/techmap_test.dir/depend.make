# Empty dependencies file for techmap_test.
# This may be replaced when dependencies are built.
