file(REMOVE_RECURSE
  "CMakeFiles/techmap_test.dir/techmap/techmap_test.cpp.o"
  "CMakeFiles/techmap_test.dir/techmap/techmap_test.cpp.o.d"
  "techmap_test"
  "techmap_test.pdb"
  "techmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/techmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
