file(REMOVE_RECURSE
  "CMakeFiles/cells_test.dir/cells/cells_test.cpp.o"
  "CMakeFiles/cells_test.dir/cells/cells_test.cpp.o.d"
  "cells_test"
  "cells_test.pdb"
  "cells_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cells_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
