# Empty compiler generated dependencies file for cells_test.
# This may be replaced when dependencies are built.
