# Empty compiler generated dependencies file for circuit_graph_test.
# This may be replaced when dependencies are built.
