file(REMOVE_RECURSE
  "CMakeFiles/circuit_graph_test.dir/graph/circuit_graph_test.cpp.o"
  "CMakeFiles/circuit_graph_test.dir/graph/circuit_graph_test.cpp.o.d"
  "circuit_graph_test"
  "circuit_graph_test.pdb"
  "circuit_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
