file(REMOVE_RECURSE
  "CMakeFiles/cell_functions_test.dir/sim/cell_functions_test.cpp.o"
  "CMakeFiles/cell_functions_test.dir/sim/cell_functions_test.cpp.o.d"
  "cell_functions_test"
  "cell_functions_test.pdb"
  "cell_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
