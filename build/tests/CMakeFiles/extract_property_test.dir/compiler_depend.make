# Empty compiler generated dependencies file for extract_property_test.
# This may be replaced when dependencies are built.
