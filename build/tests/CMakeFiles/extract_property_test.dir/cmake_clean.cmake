file(REMOVE_RECURSE
  "CMakeFiles/extract_property_test.dir/extract/extract_property_test.cpp.o"
  "CMakeFiles/extract_property_test.dir/extract/extract_property_test.cpp.o.d"
  "extract_property_test"
  "extract_property_test.pdb"
  "extract_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
