file(REMOVE_RECURSE
  "CMakeFiles/phase2_paper_example_test.dir/match/phase2_paper_example_test.cpp.o"
  "CMakeFiles/phase2_paper_example_test.dir/match/phase2_paper_example_test.cpp.o.d"
  "phase2_paper_example_test"
  "phase2_paper_example_test.pdb"
  "phase2_paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase2_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
