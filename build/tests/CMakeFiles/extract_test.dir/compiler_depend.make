# Empty compiler generated dependencies file for extract_test.
# This may be replaced when dependencies are built.
