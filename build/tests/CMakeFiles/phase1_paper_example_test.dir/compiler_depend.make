# Empty compiler generated dependencies file for phase1_paper_example_test.
# This may be replaced when dependencies are built.
