file(REMOVE_RECURSE
  "CMakeFiles/phase1_paper_example_test.dir/match/phase1_paper_example_test.cpp.o"
  "CMakeFiles/phase1_paper_example_test.dir/match/phase1_paper_example_test.cpp.o.d"
  "phase1_paper_example_test"
  "phase1_paper_example_test.pdb"
  "phase1_paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase1_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
