# Empty compiler generated dependencies file for selfmatch_test.
# This may be replaced when dependencies are built.
