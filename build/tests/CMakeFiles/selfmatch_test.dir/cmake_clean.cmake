file(REMOVE_RECURSE
  "CMakeFiles/selfmatch_test.dir/match/selfmatch_test.cpp.o"
  "CMakeFiles/selfmatch_test.dir/match/selfmatch_test.cpp.o.d"
  "selfmatch_test"
  "selfmatch_test.pdb"
  "selfmatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
