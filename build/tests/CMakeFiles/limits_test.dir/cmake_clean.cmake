file(REMOVE_RECURSE
  "CMakeFiles/limits_test.dir/match/limits_test.cpp.o"
  "CMakeFiles/limits_test.dir/match/limits_test.cpp.o.d"
  "limits_test"
  "limits_test.pdb"
  "limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
