# Empty compiler generated dependencies file for limits_test.
# This may be replaced when dependencies are built.
