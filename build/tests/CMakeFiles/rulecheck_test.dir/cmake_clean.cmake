file(REMOVE_RECURSE
  "CMakeFiles/rulecheck_test.dir/rulecheck/rulecheck_test.cpp.o"
  "CMakeFiles/rulecheck_test.dir/rulecheck/rulecheck_test.cpp.o.d"
  "rulecheck_test"
  "rulecheck_test.pdb"
  "rulecheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulecheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
