# Empty compiler generated dependencies file for rulecheck_test.
# This may be replaced when dependencies are built.
