# Empty dependencies file for symmetry_test.
# This may be replaced when dependencies are built.
