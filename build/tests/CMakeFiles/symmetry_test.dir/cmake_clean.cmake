file(REMOVE_RECURSE
  "CMakeFiles/symmetry_test.dir/match/symmetry_test.cpp.o"
  "CMakeFiles/symmetry_test.dir/match/symmetry_test.cpp.o.d"
  "symmetry_test"
  "symmetry_test.pdb"
  "symmetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
