# Empty compiler generated dependencies file for special_signals_test.
# This may be replaced when dependencies are built.
