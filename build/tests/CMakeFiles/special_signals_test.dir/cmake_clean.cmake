file(REMOVE_RECURSE
  "CMakeFiles/special_signals_test.dir/match/special_signals_test.cpp.o"
  "CMakeFiles/special_signals_test.dir/match/special_signals_test.cpp.o.d"
  "special_signals_test"
  "special_signals_test.pdb"
  "special_signals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/special_signals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
