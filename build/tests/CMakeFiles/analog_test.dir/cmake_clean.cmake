file(REMOVE_RECURSE
  "CMakeFiles/analog_test.dir/match/analog_test.cpp.o"
  "CMakeFiles/analog_test.dir/match/analog_test.cpp.o.d"
  "analog_test"
  "analog_test.pdb"
  "analog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
