# Empty dependencies file for analog_test.
# This may be replaced when dependencies are built.
