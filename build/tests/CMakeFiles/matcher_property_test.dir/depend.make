# Empty dependencies file for matcher_property_test.
# This may be replaced when dependencies are built.
