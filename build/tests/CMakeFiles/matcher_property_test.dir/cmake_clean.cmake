file(REMOVE_RECURSE
  "CMakeFiles/matcher_property_test.dir/match/matcher_property_test.cpp.o"
  "CMakeFiles/matcher_property_test.dir/match/matcher_property_test.cpp.o.d"
  "matcher_property_test"
  "matcher_property_test.pdb"
  "matcher_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcher_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
