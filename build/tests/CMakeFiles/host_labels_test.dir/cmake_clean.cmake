file(REMOVE_RECURSE
  "CMakeFiles/host_labels_test.dir/match/host_labels_test.cpp.o"
  "CMakeFiles/host_labels_test.dir/match/host_labels_test.cpp.o.d"
  "host_labels_test"
  "host_labels_test.pdb"
  "host_labels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_labels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
