# Empty dependencies file for host_labels_test.
# This may be replaced when dependencies are built.
