file(REMOVE_RECURSE
  "CMakeFiles/benchfmt_test.dir/benchfmt/benchfmt_test.cpp.o"
  "CMakeFiles/benchfmt_test.dir/benchfmt/benchfmt_test.cpp.o.d"
  "benchfmt_test"
  "benchfmt_test.pdb"
  "benchfmt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchfmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
