# Empty dependencies file for benchfmt_test.
# This may be replaced when dependencies are built.
