file(REMOVE_RECURSE
  "CMakeFiles/lvs_test.dir/lvs/lvs_test.cpp.o"
  "CMakeFiles/lvs_test.dir/lvs/lvs_test.cpp.o.d"
  "lvs_test"
  "lvs_test.pdb"
  "lvs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
