# Empty dependencies file for lvs_test.
# This may be replaced when dependencies are built.
