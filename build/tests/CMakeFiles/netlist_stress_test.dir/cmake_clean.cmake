file(REMOVE_RECURSE
  "CMakeFiles/netlist_stress_test.dir/netlist/netlist_stress_test.cpp.o"
  "CMakeFiles/netlist_stress_test.dir/netlist/netlist_stress_test.cpp.o.d"
  "netlist_stress_test"
  "netlist_stress_test.pdb"
  "netlist_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
