# Empty dependencies file for netlist_stress_test.
# This may be replaced when dependencies are built.
