# Empty compiler generated dependencies file for phase1_test.
# This may be replaced when dependencies are built.
