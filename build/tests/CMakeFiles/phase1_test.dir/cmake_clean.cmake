file(REMOVE_RECURSE
  "CMakeFiles/phase1_test.dir/match/phase1_test.cpp.o"
  "CMakeFiles/phase1_test.dir/match/phase1_test.cpp.o.d"
  "phase1_test"
  "phase1_test.pdb"
  "phase1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
