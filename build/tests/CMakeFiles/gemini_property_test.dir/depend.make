# Empty dependencies file for gemini_property_test.
# This may be replaced when dependencies are built.
