file(REMOVE_RECURSE
  "CMakeFiles/gemini_property_test.dir/gemini/gemini_property_test.cpp.o"
  "CMakeFiles/gemini_property_test.dir/gemini/gemini_property_test.cpp.o.d"
  "gemini_property_test"
  "gemini_property_test.pdb"
  "gemini_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
