file(REMOVE_RECURSE
  "CMakeFiles/spice_files_test.dir/spice/spice_files_test.cpp.o"
  "CMakeFiles/spice_files_test.dir/spice/spice_files_test.cpp.o.d"
  "spice_files_test"
  "spice_files_test.pdb"
  "spice_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
