# Empty compiler generated dependencies file for spice_files_test.
# This may be replaced when dependencies are built.
