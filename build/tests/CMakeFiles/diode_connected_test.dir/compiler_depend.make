# Empty compiler generated dependencies file for diode_connected_test.
# This may be replaced when dependencies are built.
