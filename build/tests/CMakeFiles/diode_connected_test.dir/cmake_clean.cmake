file(REMOVE_RECURSE
  "CMakeFiles/diode_connected_test.dir/match/diode_connected_test.cpp.o"
  "CMakeFiles/diode_connected_test.dir/match/diode_connected_test.cpp.o.d"
  "diode_connected_test"
  "diode_connected_test.pdb"
  "diode_connected_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diode_connected_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
