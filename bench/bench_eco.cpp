// Experiment E9 — incremental (ECO) patching: repeat extraction O(change).
//
// The HostSession claim under test: after an engineering change order edits
// a loaded host, re-running a find through the patched session costs the
// EDIT (apply + dirty-cone label recompute), not a cold rebuild of the
// host — and produces byte-identical results. Per edit size E this bench
//
//  * generates a seeded delta of E edits (inverter insertions off random
//    nets, plus net add/remove and rename ops for grammar coverage),
//  * runs the find on a COLD session built from the edited netlist,
//  * runs the same find on a PATCHED session (build from the base netlist,
//    then apply the delta), and
//  * emits both rows. The paired rows must carry identical match counters
//    (the equivalence invariant, checked here and by the CI baseline);
//    the patched rows additionally carry the eco_* counters the baseline
//    gates exactly — invalidated_labels is the dirty-cone size and must
//    scale with E, not with the host.
//
// Timings (advisory): cold session build vs apply(), per edit size.
#include <cstdio>
#include <iostream>
#include <random>

#include "bench_common.hpp"
#include "session/delta.hpp"

namespace subg::bench {
namespace {

/// E seeded edits against `host`: per edit one inverter (2 devices) driven
/// from a random existing net into a fresh net, every 4th edit renamed
/// afterwards; plus one add/remove scratch-net pair per delta. Determinism:
/// minstd_rand with a fixed per-size seed, names derived from the edit
/// index.
NetlistDelta make_delta(const Netlist& host, std::size_t edits,
                        std::uint32_t seed) {
  std::minstd_rand rng(seed);
  const auto nets = static_cast<std::uint32_t>(host.net_count());
  NetlistDelta delta;
  auto op = [&delta](DeltaOpKind kind) {
    DeltaOp o;
    o.kind = kind;
    o.line = delta.ops.size() + 1;
    delta.ops.push_back(std::move(o));
    return delta.ops.size() - 1;  // push_back may reallocate: index, not ref
  };
  for (std::size_t i = 0; i < edits; ++i) {
    const std::string in =
        host.net_name(NetId(static_cast<std::uint32_t>(rng()) % nets));
    const std::string out = "eco_w" + std::to_string(i);
    const std::string mp_name = "eco_mp" + std::to_string(i);
    DeltaOp& mp = delta.ops[op(DeltaOpKind::kAddDevice)];
    mp.type = "pmos";
    mp.name = mp_name;
    mp.nets = {out, in, "vdd", "vdd"};
    DeltaOp& mn = delta.ops[op(DeltaOpKind::kAddDevice)];
    mn.type = "nmos";
    mn.name = "eco_mn" + std::to_string(i);
    mn.nets = {out, in, "gnd", "gnd"};
    if (i % 4 == 0) {
      DeltaOp& rn = delta.ops[op(DeltaOpKind::kRenameNet)];
      rn.from = out;
      rn.to = "eco_r" + std::to_string(i);
      DeltaOp& rd = delta.ops[op(DeltaOpKind::kRenameDevice)];
      rd.from = mp_name;
      rd.to = "eco_rp" + std::to_string(i);
    }
  }
  delta.ops[op(DeltaOpKind::kAddNet)].name = "eco_scratch";
  delta.ops[op(DeltaOpKind::kRemoveNet)].name = "eco_scratch";
  return delta;
}

/// One paired measurement: the cold and patched rows plus the apply stats
/// and the two advisory timings.
struct EcoPair {
  std::size_t edits = 0;
  MatchRow cold;
  MatchRow patched;
  ApplyStats stats;
  double cold_build_ms = 0;
  double patch_ms = 0;
};

/// The gated counters row: the shared match counters plus, on patched
/// rows, the eco_* members the baseline compares exactly.
json::Value eco_counters_json(const std::vector<EcoPair>& pairs) {
  json::Value arr = json::Value::array();
  auto push_row = [&arr](const MatchRow& r, const ApplyStats* stats) {
    json::Value v = json::Value::object();
    v.set("circuit", r.circuit);
    v.set("cell", r.cell);
    v.set("cv", r.cv);
    v.set("found", r.found);
    v.set("expected", r.expected);
    v.set("rounds", r.rounds);
    v.set("relabel_ops", r.relabel_ops);
    v.set("host_relabel_ops", r.host_relabel_ops);
    v.set("cache_hits", r.cache_hits);
    v.set("cache_misses", r.cache_misses);
    v.set("passes", r.passes);
    v.set("bindings", r.bindings);
    v.set("guesses", r.guesses);
    v.set("backtracks", r.backtracks);
    v.set("expansion_ops", r.expansion_ops);
    v.set("domain_prunes", r.domain_prunes);
    v.set("nogood_hits", r.nogood_hits);
    v.set("trail_undos", r.trail_undos);
    if (stats != nullptr) {
      v.set("eco_patched_devices", stats->patched_devices);
      v.set("eco_patched_nets", stats->patched_nets);
      v.set("eco_renames", stats->renames);
      v.set("eco_invalidated_labels", stats->invalidated_labels);
      v.set("eco_compactions", stats->compactions);
    }
    arr.push(std::move(v));
  };
  for (const EcoPair& p : pairs) {
    push_row(p.cold, nullptr);
    push_row(p.patched, &p.stats);
  }
  return arr;
}

/// The counters that must agree between a cold rebuild and a patched
/// session for the pair to count as equivalent. Cache-reuse counters
/// (host_relabel_ops, cache_hits/misses) are deliberately excluded: they
/// are WHERE the patched session wins (it reuses rebased label rounds the
/// cold session has to compute), while everything the result depends on
/// must be identical.
bool rows_equivalent(const MatchRow& a, const MatchRow& b) {
  return a.cv == b.cv && a.found == b.found && a.rounds == b.rounds &&
         a.relabel_ops == b.relabel_ops && a.passes == b.passes &&
         a.bindings == b.bindings && a.guesses == b.guesses &&
         a.backtracks == b.backtracks && a.expansion_ops == b.expansion_ops &&
         a.domain_prunes == b.domain_prunes &&
         a.nogood_hits == b.nogood_hits && a.trail_undos == b.trail_undos;
}

void run(cli::Format format, CoreMode core, bool quick) {
  // ~10k devices in the full run (the ISSUE's workload size); the quick
  // gate uses the same generator at a CI-friendly size.
  const std::size_t soup_gates = quick ? 400 : 2200;
  gen::Generated g = gen::logic_soup(soup_gates, 4242);
  cells::CellLibrary lib;
  const Netlist& pattern = lib.pattern("nand2");
  const std::size_t expected = g.placed_count("nand2");

  std::vector<EcoPair> pairs;
  for (std::size_t edits : {std::size_t{1}, std::size_t{8}, std::size_t{64}}) {
    EcoPair pair;
    pair.edits = edits;
    NetlistDelta delta =
        make_delta(g.netlist, edits, static_cast<std::uint32_t>(7000 + edits));
    const std::string tag = "eco_soup/e" + std::to_string(edits);

    Netlist edited = g.netlist;
    apply_delta(edited, delta);
    SessionOptions so;
    so.core = core;
    {
      Timer timer;
      HostSession cold = HostSession::build(std::move(edited), so);
      pair.cold_build_ms = timer.seconds() * 1e3;
      pair.cold = run_match_in_session(tag + "_cold", cold, "nand2", pattern,
                                       expected, 1, core);
    }
    {
      HostSession patched = HostSession::build(g.netlist, so);
      // Warm the label cache with a find against the base host first: the
      // session is in the steady state the ECO story cares about (loaded,
      // already queried). The rebase then has cached rounds to patch, and
      // the post-patch find reuses them — host_relabel_ops collapses to
      // the dirty cone instead of the whole host.
      (void)run_match_in_session(tag + "_base", patched, "nand2", pattern,
                                 expected, 1, core);
      Timer timer;
      pair.stats = patched.apply(delta);
      pair.patch_ms = timer.seconds() * 1e3;
      pair.patched = run_match_in_session(tag + "_patched", patched, "nand2",
                                          pattern, expected, 1, core);
    }
    pairs.push_back(std::move(pair));
  }

  bool all_equivalent = true;
  std::vector<MatchRow> rows;
  for (const EcoPair& p : pairs) {
    all_equivalent = all_equivalent && rows_equivalent(p.cold, p.patched);
    rows.push_back(p.cold);
    rows.push_back(p.patched);
  }

  if (format == cli::Format::kJson) {
    write_quick_doc(
        "bench_eco", "E9", core, quick, rows, eco_counters_json(pairs),
        [&](report::Document& doc) {
          doc.set("patched_matches_cold", all_equivalent);
        },
        [&](report::Document& doc) {
          json::Value eco = json::Value::array();
          for (const EcoPair& p : pairs) {
            json::Value v = json::Value::object();
            v.set("edits", p.edits);
            v.set("cold_build_ms", p.cold_build_ms);
            v.set("patch_ms", p.patch_ms);
            v.set("invalidated_labels", p.stats.invalidated_labels);
            eco.push(std::move(v));
          }
          doc.set("eco", std::move(eco));
        });
    return;
  }

  std::printf("E9: incremental (ECO) patching vs cold rebuild "
              "(%zu-device soup)\n\n",
              g.netlist.device_count());
  print_rows(rows);
  report::Table t({"edits", "cold build ms", "patch ms", "labels recomputed"});
  for (std::size_t c = 0; c < 4; ++c) t.align_right(c);
  for (const EcoPair& p : pairs) {
    t.add_row({with_commas(static_cast<long long>(p.edits)),
               format_fixed(p.cold_build_ms, 2), format_fixed(p.patch_ms, 2),
               with_commas(static_cast<long long>(
                   p.stats.invalidated_labels))});
  }
  std::printf("\n%s", t.to_string().c_str());
  std::printf("\npatched sessions %s their cold rebuilds\n",
              all_equivalent ? "MATCH" : "DIVERGED FROM");
  if (!all_equivalent) std::exit(1);
}

}  // namespace
}  // namespace subg::bench

int main(int argc, char** argv) {
  subg::cli::Format format = subg::cli::Format::kText;
  subg::CoreMode core = subg::CoreMode::kCsr;
  bool quick = false;
  if (int code = subg::bench::parse_bench_args("bench_eco", argc, argv,
                                               &format, &core, &quick)) {
    return code;
  }
  subg::bench::run(format, core, quick);
  return 0;
}
