// Ablations of the design choices DESIGN.md calls out:
//
//  A1. Phase I consistency checks (paper §III): how much do per-round
//      host pruning and early infeasibility exits shrink the candidate
//      vector and the end-to-end time?
//  A2. Host-label caching (host_labels.hpp, an implementation addition):
//      Phase I's host relabeling is pattern-independent, so a library sweep
//      can share it. Measures the sweep speedup.
#include <cstdio>

#include "bench_common.hpp"
#include "match/host_labels.hpp"

namespace subg::bench {
namespace {

void ablate_consistency() {
  std::printf("A1: Phase I consistency checks on vs off\n\n");
  report::Table t({"host", "pattern", "CV (on)", "CV (off)", "total ms (on)",
                   "total ms (off)"});
  for (std::size_t c = 2; c < 6; ++c) t.align_right(c);

  cells::CellLibrary lib;
  struct Task {
    std::string name;
    gen::Generated host;
    const char* cell;
  };
  std::vector<Task> tasks;
  tasks.push_back({"rca64", gen::ripple_carry_adder(64), "fulladder"});
  tasks.push_back({"soup5k", gen::logic_soup(5000, 3), "xor2"});
  tasks.push_back({"soup5k", gen::logic_soup(5000, 3), "nor2"});
  tasks.push_back({"sram16x64", gen::sram_array(16, 64), "sram6t"});
  // A pattern with no instances: early infeasibility exit pays off most.
  tasks.push_back({"rca64(no dff)", gen::ripple_carry_adder(64), "dff"});

  for (Task& task : tasks) {
    Netlist pattern = lib.pattern(task.cell);
    MatchOptions on, off;
    off.phase1.consistency_checks = false;

    Timer t_on;
    SubgraphMatcher m_on(pattern, task.host.netlist, on);
    MatchReport r_on = m_on.find_all();
    const double ms_on = t_on.seconds() * 1e3;

    Timer t_off;
    SubgraphMatcher m_off(pattern, task.host.netlist, off);
    MatchReport r_off = m_off.find_all();
    const double ms_off = t_off.seconds() * 1e3;

    if (r_on.count() != r_off.count()) {
      std::printf("!! count mismatch on %s/%s\n", task.name.c_str(), task.cell);
    }
    t.add_row({task.name, task.cell,
               with_commas(static_cast<long long>(r_on.phase1.candidates.size())),
               with_commas(static_cast<long long>(r_off.phase1.candidates.size())),
               format_fixed(ms_on, 2), format_fixed(ms_off, 2)});
  }
  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);
  std::printf("\n");
}

void ablate_cache() {
  std::printf("A2: library sweep with vs without a shared host-label cache\n\n");
  report::Table t({"host", "cells swept", "no cache ms", "shared cache ms",
                   "speedup"});
  for (std::size_t c = 1; c < 5; ++c) t.align_right(c);

  cells::CellLibrary lib;
  const std::vector<const char*> sweep = {
      "inv",  "nand2", "nand3", "nor2",  "nor3",  "aoi21", "aoi22",
      "oai21", "xor2",  "xnor2", "mux2",  "dlatch", "dff",  "fulladder"};

  struct Task {
    std::string name;
    gen::Generated host;
  };
  std::vector<Task> tasks;
  tasks.push_back({"soup2k", gen::logic_soup(2000, 5)});
  tasks.push_back({"soup10k", gen::logic_soup(10000, 6)});
  tasks.push_back({"mul12", gen::array_multiplier(12)});

  for (Task& task : tasks) {
    CircuitGraph gg(task.host.netlist);

    Timer plain;
    std::size_t found_plain = 0;
    for (const char* cell : sweep) {
      Netlist pattern = lib.pattern(cell);
      SubgraphMatcher m(pattern, gg);
      found_plain += m.find_all().count();
    }
    const double ms_plain = plain.seconds() * 1e3;

    HostLabelCache cache(gg);
    Timer cached;
    std::size_t found_cached = 0;
    for (const char* cell : sweep) {
      Netlist pattern = lib.pattern(cell);
      MatchOptions opts;
      opts.phase1.host_cache = &cache;
      SubgraphMatcher m(pattern, gg, opts);
      found_cached += m.find_all().count();
    }
    const double ms_cached = cached.seconds() * 1e3;

    if (found_plain != found_cached) {
      std::printf("!! count mismatch on %s\n", task.name.c_str());
    }
    t.add_row({task.name, std::to_string(sweep.size()),
               format_fixed(ms_plain, 1), format_fixed(ms_cached, 1),
               format_fixed(ms_plain / std::max(ms_cached, 1e-3), 2) + "x"});
  }
  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);
}

}  // namespace
}  // namespace subg::bench

int main() {
  subg::bench::ablate_consistency();
  subg::bench::ablate_cache();
  return 0;
}
