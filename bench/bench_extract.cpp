// Experiment E8 — gate extraction throughput (the paper's flagship
// application, §I): transistor netlist → gate netlist with a full cell
// library, largest-first. Reports per-cell instance counts and the overall
// device compression, across host sizes.
#include <cstdio>

#include "bench_common.hpp"
#include "extract/extract.hpp"

namespace subg::bench {
namespace {

void run() {
  std::printf("E8: library gate extraction (largest-first)\n\n");

  cells::CellLibrary lib;
  std::vector<extract::LibraryCell> library;
  for (const char* name :
       {"fulladder", "halfadder", "dff", "dlatch", "xor2", "xnor2", "mux2",
        "aoi22", "aoi21", "oai21", "nand4", "nand3", "nor3", "nand2", "nor2",
        "sram6t", "buf", "inv"}) {
    library.push_back(extract::LibraryCell{name, lib.pattern(name)});
  }

  report::Table t({"host", "transistors", "gates out", "unextracted",
                   "compression", "time ms"});
  for (std::size_t c = 1; c < 6; ++c) t.align_right(c);

  struct Task {
    std::string name;
    gen::Generated host;
  };
  std::vector<Task> tasks;
  tasks.push_back({"rca32", gen::ripple_carry_adder(32)});
  tasks.push_back({"mul12", gen::array_multiplier(12)});
  tasks.push_back({"sram16x64", gen::sram_array(16, 64)});
  tasks.push_back({"rf16x16", gen::register_file(16, 16)});
  tasks.push_back({"soup2k", gen::logic_soup(2000, 21)});

  for (Task& task : tasks) {
    Timer timer;
    extract::ExtractResult result = extract::extract_gates(task.host.netlist,
                                                           library);
    const double ms = timer.seconds() * 1e3;
    t.add_row(
        {task.name,
         with_commas(static_cast<long long>(result.report.devices_before)),
         with_commas(static_cast<long long>(result.report.devices_after)),
         with_commas(
             static_cast<long long>(result.report.unextracted_primitives)),
         format_fixed(static_cast<double>(result.report.devices_before) /
                          static_cast<double>(result.report.devices_after),
                      1) +
             "x",
         format_fixed(ms, 1)});
  }
  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);

  // Detail for one host: which cells were found.
  std::printf("\nPer-cell detail for soup2k:\n");
  gen::Generated soup = gen::logic_soup(2000, 21);
  extract::ExtractResult detail = extract::extract_gates(soup.netlist, library);
  report::Table d({"cell", "instances", "placed by generator", "ms"});
  for (std::size_t c = 1; c < 4; ++c) d.align_right(c);
  for (const auto& per : detail.report.cells) {
    if (per.instances == 0) continue;
    d.add_row({per.cell, with_commas(static_cast<long long>(per.instances)),
               with_commas(static_cast<long long>(soup.placed_count(per.cell))),
               format_fixed(per.seconds * 1e3, 1)});
  }
  std::string sd = d.to_string();
  std::fputs(sd.c_str(), stdout);
  std::printf(
      "\n'instances' can differ from 'placed': composite cells are claimed\n"
      "largest-first (a dff consumes two dlatches; an extracted xor2 hides\n"
      "its two inverters), and leftover fragments extract as smaller "
      "cells.\n");
}

}  // namespace
}  // namespace subg::bench

int main() {
  subg::bench::run();
  return 0;
}
