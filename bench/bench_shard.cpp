// Experiment E10 — sharded matching on a region-decomposed million-device
// SoC (ISSUE 10 / DESIGN.md §11).
//
// The sharding claim under test: decomposing the host into fanout-bounded
// regions changes the Phase I sweep SCHEDULE — per-shard lanes, a round-0
// structural prefilter that bulk-skips dead regions — but never the result.
// Over a ~1M-device tiled SoC (gen::soc_grid: 512 tiles x 326 units of
// nand2+inv, a shared 8-net bus, and a 1024-cell res/diode pad ring) this
// bench
//
//  * runs the nand2 find MONOLITHICALLY (row "soc_1m"),
//  * runs it SHARDED at the default 65536-device region target (row
//    "soc_1m/shard"), and
//  * re-runs the sharded find at --jobs=8,
//
// then asserts all three reports are byte-identical (report::to_json with
// the wall-clock seconds zeroed) and exits 1 on any divergence. The pad
// ring guarantees the prefilter has real work: a pad shard holds only
// res/diode devices and degree-1/3 nets, which share no round-0 label with
// a CMOS nand2 pattern, so shards_prefilter_rejects must be > 0 — the CI
// baseline gates that exactly, alongside every shared match counter.
// 512 tiles (not fewer, bigger ones) so the bus nets' fanout of
// 512/8 + 1 = 65 crosses the default 64-pin anchor threshold — the bus is
// a boundary-anchor lane, not part of any region.
//
// Timings (advisory): per-row Phase I/II wall clock, monolithic vs sharded.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.hpp"

namespace subg::bench {
namespace {

/// report::to_json with the wall-clock members zeroed — the byte-identity
/// comparand (the same idiom the shard/core equivalence tests pin down).
std::string report_fingerprint(MatchReport report) {
  report.phase1_seconds = 0;
  report.phase2_seconds = 0;
  return report::to_json(report).dump();
}

struct ShardRun {
  MatchRow row;
  std::string fingerprint;
};

ShardRun run_soc(const std::string& row_name, const Netlist& host,
                 const Netlist& pattern, std::size_t expected,
                 std::size_t shard_target, std::size_t jobs, CoreMode core) {
  SessionOptions so;
  so.core = core;
  so.shard_target_devices = shard_target;
  HostSession session = HostSession::build(host, so);
  ShardRun out;
  MatchReport report;
  out.row = run_match_in_session(row_name, session, "nand2", pattern,
                                 expected, jobs, core, Phase2Filter::kPaths,
                                 &report);
  out.fingerprint = report_fingerprint(std::move(report));
  return out;
}

void run(cli::Format format, CoreMode core, bool quick) {
  // The quick workload IS the scale workload: 512*326*6 = 1,001,472 core
  // transistors (+ pads + bus drivers), placed nand2 = 166,912. The full
  // run only adds a per-jobs scaling sweep on top.
  const std::uint64_t tiles = 512;
  const std::uint64_t units = 326;
  const std::uint64_t pads = 1024;
  gen::Generated g = gen::soc_grid(tiles, units, pads);
  cells::CellLibrary lib;
  const Netlist& pattern = lib.pattern("nand2");
  const std::size_t expected = g.placed_count("nand2");
  const std::size_t shard_target = std::size_t{1} << 16;

  const ShardRun mono =
      run_soc("soc_1m", g.netlist, pattern, expected, 0, 1, core);
  const ShardRun sharded =
      run_soc("soc_1m/shard", g.netlist, pattern, expected, shard_target, 1,
              core);
  const ShardRun sharded_j8 =
      run_soc("soc_1m/shard/j8", g.netlist, pattern, expected, shard_target, 8,
              core);

  const bool identical = mono.fingerprint == sharded.fingerprint &&
                         mono.fingerprint == sharded_j8.fingerprint;
  const bool prefilter_fired = sharded.row.shards_prefilter_rejects > 0;

  // Gated rows: the monolithic and sharded (jobs=1) runs. The jobs=8 run
  // exists for the identity check only — its counters equal the jobs=1 row
  // by the determinism contract, so gating it would add no information.
  std::vector<MatchRow> rows = {mono.row, sharded.row};

  std::vector<ScalingRow> scaling;
  if (!quick) {
    SessionOptions so;
    so.core = core;
    so.shard_target_devices = shard_target;
    // jobs_scaling builds its own sessions; run the sweep sharded by hand.
    for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             ThreadPool::default_jobs()}) {
      HostSession session = HostSession::build(g.netlist, so);
      MatchOptions opts;
      opts.jobs = jobs;
      opts.core = core;
      ScalingRow srow;
      srow.jobs = jobs;
      Timer timer;
      MatchReport r = find_in_session(pattern, session, opts);
      srow.ms = timer.seconds() * 1e3;
      srow.found = r.count();
      scaling.push_back(srow);
    }
    for (ScalingRow& srow : scaling) {
      srow.speedup = scaling.front().ms / srow.ms;
    }
  }

  if (format == cli::Format::kJson) {
    write_quick_doc(
        "bench_shard", "E10", core, quick, rows, counters_json(rows),
        [&](report::Document& doc) {
          doc.set("sharded_matches_monolithic", identical);
          doc.set("prefilter_fired", prefilter_fired);
        },
        [&](report::Document& doc) {
          if (!quick) {
            doc.set("scaling",
                    scaling_json("nand2 in soc_1m (sharded)", scaling));
          }
        });
  } else {
    std::printf("E10: sharded vs monolithic matching on a %s-device SoC\n\n",
                with_commas(static_cast<long long>(
                    g.netlist.device_count())).c_str());
    print_rows(rows);
    std::printf("\nshards: total %zu, skipped %zu, prefilter rejects %zu\n",
                sharded.row.shards_total, sharded.row.shards_skipped,
                sharded.row.shards_prefilter_rejects);
    std::printf("sharded reports %s monolithic (jobs 1 and 8)\n",
                identical ? "MATCH" : "DIVERGED FROM");
    std::printf("round-0 prefilter %s\n",
                prefilter_fired ? "fired (pad shard rejected)"
                                : "DID NOT FIRE");
    if (!quick) print_scaling("nand2 in soc_1m (sharded)", scaling);
  }
  if (!identical || !prefilter_fired) std::exit(1);
}

}  // namespace
}  // namespace subg::bench

int main(int argc, char** argv) {
  subg::cli::Format format = subg::cli::Format::kText;
  subg::CoreMode core = subg::CoreMode::kCsr;
  bool quick = false;
  if (int code = subg::bench::parse_bench_args("bench_shard", argc, argv,
                                               &format, &core, &quick)) {
    return code;
  }
  subg::bench::run(format, core, quick);
  return 0;
}
