// Experiment E4 — Fig 7: special signals (Vdd/GND).
//
// The inverter pattern is found inside every NAND/NOR gate unless the
// rails are treated as special signals matched by name. With 3-pin
// transistors (the paper's model — no bulk pin giving the rails away) we
// count inverter "instances" in NAND-heavy hosts with and without special
// rails, and measure the per-candidate Phase II cost as rail fanout grows.
#include <cstdio>

#include "match/matcher.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace subg::bench {
namespace {

using namespace subg;

struct Host3 {
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId pmos = cat->require("pmos");
  Netlist nl;
  NetId vdd, gnd;

  Host3(int inverters, int nands, bool global_rails) : nl(cat, "fig7") {
    vdd = nl.add_net("vdd");
    gnd = nl.add_net("gnd");
    if (global_rails) {
      nl.mark_global(vdd);
      nl.mark_global(gnd);
    }
    for (int i = 0; i < inverters; ++i) {
      NetId a = nl.add_net("ia" + std::to_string(i));
      NetId y = nl.add_net("iy" + std::to_string(i));
      nl.add_device(pmos, {y, a, vdd});
      nl.add_device(nmos, {y, a, gnd});
    }
    for (int i = 0; i < nands; ++i) {
      NetId a = nl.add_net("na" + std::to_string(i));
      NetId b = nl.add_net("nb" + std::to_string(i));
      NetId y = nl.add_net("ny" + std::to_string(i));
      NetId x = nl.add_net("nx" + std::to_string(i));
      nl.add_device(pmos, {y, a, vdd});
      nl.add_device(pmos, {y, b, vdd});
      nl.add_device(nmos, {y, a, x});
      nl.add_device(nmos, {x, b, gnd});
    }
  }
};

Netlist inverter_pattern(const std::shared_ptr<const DeviceCatalog>& cat,
                         bool global_rails) {
  Netlist nl(cat, "inv");
  NetId a = nl.add_net("a"), y = nl.add_net("y");
  NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd");
  nl.add_device(cat->require("pmos"), {y, a, vdd});
  nl.add_device(cat->require("nmos"), {y, a, gnd});
  nl.mark_port(a);
  nl.mark_port(y);
  if (global_rails) {
    nl.mark_global(vdd);
    nl.mark_global(gnd);
  } else {
    nl.mark_port(vdd);
    nl.mark_port(gnd);
  }
  return nl;
}

void run() {
  std::printf("E4 (Fig 7): inverter instances found with/without special "
              "rails\n\n");
  report::Table t({"inverters", "nands", "rails", "found", "false hits",
                   "total ms"});
  for (std::size_t c = 0; c < 6; ++c) t.align_right(c);

  for (auto [invs, nands] : {std::pair{8, 8}, {32, 32}, {128, 128},
                             {512, 512}}) {
    for (bool special : {false, true}) {
      Host3 host(invs, nands, special);
      Netlist pattern = inverter_pattern(host.cat, special);
      Timer timer;
      SubgraphMatcher matcher(pattern, host.nl);
      MatchReport r = matcher.find_all();
      const double ms = timer.seconds() * 1e3;
      const std::size_t false_hits =
          r.count() - std::min<std::size_t>(r.count(), invs);
      t.add_row({std::to_string(invs), std::to_string(nands),
                 special ? "special" : "plain",
                 with_commas(static_cast<long long>(r.count())),
                 with_commas(static_cast<long long>(false_hits)),
                 format_fixed(ms, 2)});
    }
  }
  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);
  std::printf(
      "\nWithout special rails every NAND contributes one false inverter\n"
      "(paper Fig 7); with rails matched by name the false hits vanish.\n");
}

}  // namespace
}  // namespace subg::bench

int main() {
  subg::bench::run();
  return 0;
}
