// Micro-benchmarks (google-benchmark) for the building blocks: circuit
// graph construction, Phase I relabeling, per-candidate Phase II
// verification, explicit instance verification, and Gemini comparison.
// These localize where time goes inside the end-to-end numbers reported by
// the experiment benches.
#include <benchmark/benchmark.h>

#include "cells/cells.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "match/phase1.hpp"
#include "match/phase2.hpp"
#include "match/verify.hpp"

namespace subg {
namespace {

void BM_GraphConstruction(benchmark::State& state) {
  gen::Generated g = gen::ripple_carry_adder(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    CircuitGraph graph(g.netlist);
    benchmark::DoNotOptimize(graph.vertex_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.netlist.device_count()));
}
BENCHMARK(BM_GraphConstruction)->Arg(16)->Arg(64)->Arg(256);

void BM_Phase1(benchmark::State& state) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  gen::Generated g = gen::ripple_carry_adder(static_cast<int>(state.range(0)));
  CircuitGraph sg(pattern), gg(g.netlist);
  for (auto _ : state) {
    Phase1Result r = run_phase1(sg, gg);
    benchmark::DoNotOptimize(r.candidates.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.netlist.device_count()));
}
BENCHMARK(BM_Phase1)->Arg(16)->Arg(64)->Arg(256);

void BM_Phase2PerCandidate(benchmark::State& state) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  gen::Generated g = gen::ripple_carry_adder(64);
  CircuitGraph sg(pattern), gg(g.netlist);
  Phase1Result p1 = run_phase1(sg, gg);
  Phase2Verifier verifier(sg, gg);
  std::size_t i = 0;
  for (auto _ : state) {
    auto inst = verifier.verify(p1.key, p1.candidates[i % p1.candidates.size()]);
    benchmark::DoNotOptimize(inst.has_value());
    ++i;
  }
}
BENCHMARK(BM_Phase2PerCandidate);

void BM_VerifyInstance(benchmark::State& state) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  gen::Generated g = gen::ripple_carry_adder(16);
  SubgraphMatcher matcher(pattern, g.netlist);
  MatchReport r = matcher.find_all();
  const SubcircuitInstance& inst = r.instances.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_instance(pattern, g.netlist, inst));
  }
}
BENCHMARK(BM_VerifyInstance);

void BM_GeminiCompare(benchmark::State& state) {
  gen::Generated a = gen::logic_soup(static_cast<std::size_t>(state.range(0)), 5);
  gen::Generated b = gen::logic_soup(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    CompareResult r = compare_netlists(a.netlist, b.netlist);
    benchmark::DoNotOptimize(r.isomorphic);
  }
}
BENCHMARK(BM_GeminiCompare)->Arg(100)->Arg(400);

void BM_EndToEndMatch(benchmark::State& state) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("sram6t");
  gen::Generated g = gen::sram_array(16, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SubgraphMatcher matcher(pattern, g.netlist);
    MatchReport r = matcher.find_all();
    benchmark::DoNotOptimize(r.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.netlist.device_count()));
}
BENCHMARK(BM_EndToEndMatch)->Arg(32)->Arg(128);

}  // namespace
}  // namespace subg

BENCHMARK_MAIN();
