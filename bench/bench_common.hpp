// Shared helpers for the experiment benches.
#pragma once

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/host_labels.hpp"
#include "match/matcher.hpp"
#include "obs/metrics.hpp"
#include "session/session.hpp"
#include "report/document.hpp"
#include "report/report.hpp"
#include "util/cli_options.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace subg::bench {

struct MatchRow {
  std::string circuit;
  std::size_t devices = 0;
  std::size_t nets = 0;
  std::string cell;
  std::size_t cv = 0;
  std::size_t found = 0;
  std::size_t expected = 0;  // construction ground truth (lower bound)
  std::size_t guesses = 0;
  double phase1_ms = 0;
  double phase2_ms = 0;
  /// How the sweep ended; anything but kComplete means `found` is a lower
  /// bound and the timing row is not comparable to a complete run.
  RunOutcome outcome = RunOutcome::kComplete;
  // Deterministic work counters (identical across --jobs and --core, and
  // across machines): these are what the CI baseline gate compares exactly,
  // while timings stay advisory.
  std::size_t rounds = 0;             ///< Phase I relabeling rounds
  std::uint64_t relabel_ops = 0;      ///< Phase I pattern-side contributions
  std::uint64_t host_relabel_ops = 0; ///< Phase I host-side contributions
  std::uint64_t cache_hits = 0;       ///< label-cache round reuses
  std::uint64_t cache_misses = 0;     ///< label-cache rounds computed
  std::size_t passes = 0;             ///< Phase II relabeling passes
  std::size_t bindings = 0;
  std::size_t backtracks = 0;
  std::size_t expansion_ops = 0;      ///< Phase II edge visits
  // Phase II fast-path counters (all zero when the signature prefilter is
  // disabled for an A/B row).
  std::size_t domain_prunes = 0;      ///< postulates refuted by the prefilter
  std::size_t nogood_hits = 0;        ///< refutations served from the memo
  std::size_t trail_undos = 0;        ///< trail entries rolled back
  // Static-analyzer counters (zero unless the analyzer layer fired: the
  // path-label refuter needs --phase2-filter=paths, symmetry skips need an
  // exhaustive run with non-trivial pattern orbits, and infeasible
  // shortcuts need a certificate that refutes the pairing outright).
  std::size_t path_label_prunes = 0;  ///< postulates refuted by path labels
  std::size_t symmetry_skips = 0;     ///< mappings folded by automorphisms
  std::size_t infeasible_shortcuts = 0;  ///< searches skipped by certificate
  // Sharded-sweep counters (all zero on monolithic rows; deterministic —
  // the shard plan is a pure function of the host, the round-0 skip rule a
  // pure function of (plan, pattern)).
  std::size_t shards_total = 0;       ///< regions in the session's plan
  std::size_t shards_skipped = 0;     ///< regions bulk-skipped for >= 1 kind
  std::size_t shards_prefilter_rejects = 0;  ///< regions dead for BOTH kinds
};

/// Run one match through an existing HostSession and collect the row. A
/// private metrics registry rides along to capture the label-cache
/// counters; the session's cache stats are folded in explicitly (Phase I
/// only auto-records its own fallback cache).
inline MatchRow run_match_in_session(const std::string& circuit_name,
                                     HostSession& session,
                                     const std::string& cell_name,
                                     const Netlist& pattern,
                                     std::size_t expected,
                                     std::size_t jobs = 1,
                                     CoreMode core = CoreMode::kCsr,
                                     Phase2Filter phase2_filter =
                                         Phase2Filter::kPaths,
                                     MatchReport* report_out = nullptr) {
  const Netlist& host = session.netlist();
  MatchOptions opts;
  opts.jobs = jobs;
  opts.core = core;
  opts.phase2_filter = phase2_filter;
  obs::Metrics metrics;
  opts.metrics = &metrics;
  MatchReport r = find_in_session(pattern, session, opts);
  record_cache_stats(&metrics, session.cache().stats());
  MatchRow row;
  row.circuit = circuit_name;
  row.devices = host.device_count();
  row.nets = host.net_count();
  row.cell = cell_name;
  row.cv = r.phase1.candidates.size();
  row.found = r.count();
  row.expected = expected;
  row.guesses = r.phase2.guesses;
  row.phase1_ms = r.phase1_seconds * 1e3;
  row.phase2_ms = r.phase2_seconds * 1e3;
  row.outcome = r.status.outcome;
  row.rounds = r.phase1.rounds;
  row.relabel_ops = r.phase1.relabel_ops;
  row.passes = r.phase2.passes;
  row.bindings = r.phase2.bindings;
  row.backtracks = r.phase2.backtracks;
  row.expansion_ops = r.phase2.expansion_ops;
  row.domain_prunes = r.phase2.domain_prunes;
  row.nogood_hits = r.phase2.nogood_hits;
  row.trail_undos = r.phase2.trail_undos;
  row.path_label_prunes = r.phase2.path_label_prunes;
  row.symmetry_skips = r.phase2.symmetry_skips;
  row.infeasible_shortcuts = r.infeasible_shortcuts;
  row.shards_total = r.phase1.shards_total;
  row.shards_skipped = r.phase1.shards_skipped;
  row.shards_prefilter_rejects = r.phase1.shards_prefilter_rejects;
  const obs::Snapshot snap = metrics.collect();
  row.host_relabel_ops = snap.counter("phase1.label_cache.relabel_ops");
  row.cache_hits = snap.counter("phase1.label_cache.hits");
  row.cache_misses = snap.counter("phase1.label_cache.misses");
  if (report_out != nullptr) *report_out = std::move(r);
  return row;
}

/// run_match_in_session over a freshly built session (the host is copied):
/// the one-shot form the bench tables use. A cold session per row keeps the
/// cache counters per-run deterministic.
inline MatchRow run_match(const std::string& circuit_name, const Netlist& host,
                          const std::string& cell_name, const Netlist& pattern,
                          std::size_t expected, std::size_t jobs = 1,
                          CoreMode core = CoreMode::kCsr,
                          Phase2Filter phase2_filter = Phase2Filter::kPaths) {
  SessionOptions so;
  so.core = core;
  HostSession session = HostSession::build(host, so);
  return run_match_in_session(circuit_name, session, cell_name, pattern,
                              expected, jobs, core, phase2_filter);
}

/// The deterministic per-row counters as a json array — the payload the CI
/// bench-regression gate (tools/check_bench_baseline.py) compares exactly
/// against the committed BENCH_baseline.json.
inline json::Value counters_json(const std::vector<MatchRow>& rows) {
  json::Value arr = json::Value::array();
  for (const MatchRow& r : rows) {
    json::Value v = json::Value::object();
    v.set("circuit", r.circuit);
    v.set("cell", r.cell);
    v.set("cv", r.cv);
    v.set("found", r.found);
    v.set("expected", r.expected);
    v.set("rounds", r.rounds);
    v.set("relabel_ops", r.relabel_ops);
    v.set("host_relabel_ops", r.host_relabel_ops);
    v.set("cache_hits", r.cache_hits);
    v.set("cache_misses", r.cache_misses);
    v.set("passes", r.passes);
    v.set("bindings", r.bindings);
    v.set("guesses", r.guesses);
    v.set("backtracks", r.backtracks);
    v.set("expansion_ops", r.expansion_ops);
    v.set("domain_prunes", r.domain_prunes);
    v.set("nogood_hits", r.nogood_hits);
    v.set("trail_undos", r.trail_undos);
    v.set("path_label_prunes", r.path_label_prunes);
    v.set("symmetry_skips", r.symmetry_skips);
    v.set("infeasible_shortcuts", r.infeasible_shortcuts);
    v.set("shards_total", r.shards_total);
    v.set("shards_skipped", r.shards_skipped);
    v.set("shards_prefilter_rejects", r.shards_prefilter_rejects);
    arr.push(std::move(v));
  }
  return arr;
}

/// Advisory wall-clock companion to counters_json: same row keys, timing
/// values only. The gate prints drift here but never fails on it.
inline json::Value timings_json(const std::vector<MatchRow>& rows) {
  json::Value arr = json::Value::array();
  for (const MatchRow& r : rows) {
    json::Value v = json::Value::object();
    v.set("circuit", r.circuit);
    v.set("cell", r.cell);
    v.set("phase1_ms", r.phase1_ms);
    v.set("phase2_ms", r.phase2_ms);
    arr.push(std::move(v));
  }
  return arr;
}

/// Per-jobs scaling of one (pattern, host) match: median-of-`reps` total
/// matching time at each lane count, with speedup relative to --jobs=1.
/// The found-count is checked identical across lane counts (the report
/// contract), so the rows time the same work.
struct ScalingRow {
  std::size_t jobs = 1;
  std::size_t found = 0;
  double ms = 0;
  double speedup = 1.0;
};

inline std::vector<ScalingRow> jobs_scaling(const Netlist& pattern,
                                            const Netlist& host,
                                            int reps = 3) {
  std::vector<std::size_t> lanes = {1, 2, 4};
  const std::size_t hw = ThreadPool::default_jobs();
  if (hw > lanes.back()) lanes.push_back(hw);
  std::vector<ScalingRow> rows;
  for (std::size_t jobs : lanes) {
    MatchOptions opts;
    opts.jobs = jobs;
    ScalingRow row;
    row.jobs = jobs;
    row.ms = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      // A cold session per rep: lanes race the same work, not a warm cache.
      HostSession session = HostSession::build(host, SessionOptions{});
      Timer timer;
      MatchReport r = find_in_session(pattern, session, opts);
      row.ms = std::min(row.ms, timer.seconds() * 1e3);
      row.found = r.count();
    }
    rows.push_back(row);
  }
  for (ScalingRow& row : rows) row.speedup = rows.front().ms / row.ms;
  return rows;
}

/// The scaling table, shared by the text rendering and the json document.
inline report::Table make_scaling_table(const std::vector<ScalingRow>& rows) {
  report::Table t({"jobs", "found", "time ms", "speedup"});
  for (std::size_t c = 0; c < 4; ++c) t.align_right(c);
  for (const ScalingRow& r : rows) {
    t.add_row({with_commas(static_cast<long long>(r.jobs)),
               with_commas(static_cast<long long>(r.found)),
               format_fixed(r.ms, 2), format_fixed(r.speedup, 2) + "x"});
  }
  return t;
}

[[nodiscard]] inline bool scaling_diverged(const std::vector<ScalingRow>& rows) {
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].found != rows[0].found) return true;
  }
  return false;
}

inline void print_scaling(const std::string& what,
                          const std::vector<ScalingRow>& rows) {
  std::printf("\nper-jobs scaling: %s (hardware concurrency %zu)\n",
              what.c_str(), ThreadPool::default_jobs());
  std::string s = make_scaling_table(rows).to_string();
  std::fputs(s.c_str(), stdout);
  if (scaling_diverged(rows)) {
    std::printf("WARNING: found-count diverged across jobs "
                "(determinism contract violated)\n");
  }
}

/// A scaling section of a bench json document: the rendered table plus the
/// determinism verdict.
inline json::Value scaling_json(const std::string& what,
                                const std::vector<ScalingRow>& rows) {
  json::Value v = json::Value::object();
  v.set("what", what);
  v.set("hardware_concurrency", ThreadPool::default_jobs());
  v.set("table", report::to_json(make_scaling_table(rows)));
  v.set("found_identical_across_jobs", !scaling_diverged(rows));
  return v;
}

/// The Table-2-style results table. `any_incomplete` (when non-null) is set
/// iff some row hit a resource limit (its found-count is starred).
inline report::Table make_match_table(const std::vector<MatchRow>& rows,
                                      bool* any_incomplete = nullptr) {
  report::Table t({"circuit", "devices", "nets", "subcircuit", "CV", "found",
                   "expected", "guesses", "phaseI ms", "phaseII ms",
                   "total ms"});
  for (std::size_t c = 1; c < 11; ++c) t.align_right(c);
  if (any_incomplete != nullptr) *any_incomplete = false;
  for (const MatchRow& r : rows) {
    std::string found = with_commas(static_cast<long long>(r.found));
    if (r.outcome != RunOutcome::kComplete) {
      found += "*";
      if (any_incomplete != nullptr) *any_incomplete = true;
    }
    t.add_row({r.circuit, with_commas(static_cast<long long>(r.devices)),
               with_commas(static_cast<long long>(r.nets)), r.cell,
               with_commas(static_cast<long long>(r.cv)), found,
               with_commas(static_cast<long long>(r.expected)),
               with_commas(static_cast<long long>(r.guesses)),
               format_fixed(r.phase1_ms, 2), format_fixed(r.phase2_ms, 2),
               format_fixed(r.phase1_ms + r.phase2_ms, 2)});
  }
  return t;
}

inline void print_rows(const std::vector<MatchRow>& rows) {
  bool any_incomplete = false;
  std::string s = make_match_table(rows, &any_incomplete).to_string();
  std::fputs(s.c_str(), stdout);
  if (any_incomplete) {
    std::printf("(* = run hit a resource limit; count is a lower bound)\n");
  }
}

/// The quick-mode json document every baseline-gated bench emits — tool +
/// experiment header, core/quick echo, the rendered match table, the gated
/// counters array, and the advisory timings, in that order. The `before` /
/// `after` hooks splice bench-specific members in at their historical
/// positions (between any_incomplete and counters, and after timings), so
/// hoisting the emitter changed no bench's field order.
inline void write_quick_doc(
    const char* tool, const char* experiment, CoreMode core, bool quick,
    const std::vector<MatchRow>& rows, json::Value counters,
    const std::function<void(report::Document&)>& before = {},
    const std::function<void(report::Document&)>& after = {}) {
  report::Document doc(tool, experiment);
  doc.set("core", to_string(core));
  doc.set("quick", quick);
  bool any_incomplete = false;
  doc.set("table", report::to_json(make_match_table(rows, &any_incomplete)));
  doc.set("any_incomplete", any_incomplete);
  if (before) before(doc);
  doc.set("counters", std::move(counters));
  doc.set("timings", timings_json(rows));
  if (after) after(doc);
  doc.write(std::cout);
}

/// Shared argv handling for the bench mains: global flags only, no
/// positionals, and only --format applies everywhere (benches fix their own
/// workloads and lane counts so rows stay comparable). The baseline-gated
/// benches additionally accept --core=csr|legacy (via `core`) and --quick
/// (via `quick`): quick mode runs reduced deterministic workloads with one
/// rep and no scaling sweeps, for the CI bench-regression gate. Returns the
/// format via `format`; a non-zero return is the process exit code.
inline int parse_bench_args(const char* name, int argc, char** argv,
                            cli::Format* format, CoreMode* core = nullptr,
                            bool* quick = nullptr) {
  // --quick is bench-only (not a global flag), so strip it before the
  // shared parser; remember whether --core appeared so benches without the
  // out-param still reject it.
  std::vector<std::string> args;
  bool saw_quick = false;
  bool saw_core = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (quick != nullptr && arg == "--quick") {
      saw_quick = true;
      continue;
    }
    if (arg.rfind("--core=", 0) == 0) saw_core = true;
    args.push_back(arg);
  }
  cli::ParsedArgs parsed = cli::parse_args(args);
  std::string error = parsed.error;
  if (error.empty() && !parsed.positionals.empty()) {
    error = "unexpected argument '" + parsed.positionals.front() + "'";
  }
  if (error.empty() &&
      (parsed.options.jobs != 0 || parsed.options.lenient ||
       parsed.options.metrics || parsed.options.budget.has_deadline() ||
       !parsed.options.top.empty() || !parsed.options.pattern_top.empty())) {
    error = "flag does not apply to benches";
  }
  if (error.empty() && saw_core && core == nullptr) {
    error = "--core does not apply to this bench";
  }
  if (!error.empty()) {
    const bool gated = core != nullptr;
    std::fprintf(stderr, "%s: %s\nusage: %s [--format=text|json]%s\n", name,
                 error.c_str(), name,
                 gated ? " [--core=csr|legacy] [--quick]" : "");
    return 64;
  }
  *format = parsed.options.format;
  if (core != nullptr) *core = parsed.options.core;
  if (quick != nullptr) *quick = saw_quick;
  return 0;
}

}  // namespace subg::bench
