// Shared helpers for the experiment benches.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "report/document.hpp"
#include "report/report.hpp"
#include "util/cli_options.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace subg::bench {

struct MatchRow {
  std::string circuit;
  std::size_t devices = 0;
  std::size_t nets = 0;
  std::string cell;
  std::size_t cv = 0;
  std::size_t found = 0;
  std::size_t expected = 0;  // construction ground truth (lower bound)
  std::size_t guesses = 0;
  double phase1_ms = 0;
  double phase2_ms = 0;
  /// How the sweep ended; anything but kComplete means `found` is a lower
  /// bound and the timing row is not comparable to a complete run.
  RunOutcome outcome = RunOutcome::kComplete;
};

/// Run one (pattern, host) match and collect the row.
inline MatchRow run_match(const std::string& circuit_name, const Netlist& host,
                          const std::string& cell_name, const Netlist& pattern,
                          std::size_t expected, std::size_t jobs = 1) {
  MatchOptions opts;
  opts.jobs = jobs;
  SubgraphMatcher matcher(pattern, host, opts);
  MatchReport r = matcher.find_all();
  MatchRow row;
  row.circuit = circuit_name;
  row.devices = host.device_count();
  row.nets = host.net_count();
  row.cell = cell_name;
  row.cv = r.phase1.candidates.size();
  row.found = r.count();
  row.expected = expected;
  row.guesses = r.phase2.guesses;
  row.phase1_ms = r.phase1_seconds * 1e3;
  row.phase2_ms = r.phase2_seconds * 1e3;
  row.outcome = r.status.outcome;
  return row;
}

/// Per-jobs scaling of one (pattern, host) match: median-of-`reps` total
/// matching time at each lane count, with speedup relative to --jobs=1.
/// The found-count is checked identical across lane counts (the report
/// contract), so the rows time the same work.
struct ScalingRow {
  std::size_t jobs = 1;
  std::size_t found = 0;
  double ms = 0;
  double speedup = 1.0;
};

inline std::vector<ScalingRow> jobs_scaling(const Netlist& pattern,
                                            const Netlist& host,
                                            int reps = 3) {
  std::vector<std::size_t> lanes = {1, 2, 4};
  const std::size_t hw = ThreadPool::default_jobs();
  if (hw > lanes.back()) lanes.push_back(hw);
  std::vector<ScalingRow> rows;
  for (std::size_t jobs : lanes) {
    MatchOptions opts;
    opts.jobs = jobs;
    ScalingRow row;
    row.jobs = jobs;
    row.ms = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      SubgraphMatcher matcher(pattern, host, opts);
      Timer timer;
      MatchReport r = matcher.find_all();
      row.ms = std::min(row.ms, timer.seconds() * 1e3);
      row.found = r.count();
    }
    rows.push_back(row);
  }
  for (ScalingRow& row : rows) row.speedup = rows.front().ms / row.ms;
  return rows;
}

/// The scaling table, shared by the text rendering and the json document.
inline report::Table make_scaling_table(const std::vector<ScalingRow>& rows) {
  report::Table t({"jobs", "found", "time ms", "speedup"});
  for (std::size_t c = 0; c < 4; ++c) t.align_right(c);
  for (const ScalingRow& r : rows) {
    t.add_row({with_commas(static_cast<long long>(r.jobs)),
               with_commas(static_cast<long long>(r.found)),
               format_fixed(r.ms, 2), format_fixed(r.speedup, 2) + "x"});
  }
  return t;
}

[[nodiscard]] inline bool scaling_diverged(const std::vector<ScalingRow>& rows) {
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].found != rows[0].found) return true;
  }
  return false;
}

inline void print_scaling(const std::string& what,
                          const std::vector<ScalingRow>& rows) {
  std::printf("\nper-jobs scaling: %s (hardware concurrency %zu)\n",
              what.c_str(), ThreadPool::default_jobs());
  std::string s = make_scaling_table(rows).to_string();
  std::fputs(s.c_str(), stdout);
  if (scaling_diverged(rows)) {
    std::printf("WARNING: found-count diverged across jobs "
                "(determinism contract violated)\n");
  }
}

/// A scaling section of a bench json document: the rendered table plus the
/// determinism verdict.
inline json::Value scaling_json(const std::string& what,
                                const std::vector<ScalingRow>& rows) {
  json::Value v = json::Value::object();
  v.set("what", what);
  v.set("hardware_concurrency", ThreadPool::default_jobs());
  v.set("table", report::to_json(make_scaling_table(rows)));
  v.set("found_identical_across_jobs", !scaling_diverged(rows));
  return v;
}

/// The Table-2-style results table. `any_incomplete` (when non-null) is set
/// iff some row hit a resource limit (its found-count is starred).
inline report::Table make_match_table(const std::vector<MatchRow>& rows,
                                      bool* any_incomplete = nullptr) {
  report::Table t({"circuit", "devices", "nets", "subcircuit", "CV", "found",
                   "expected", "guesses", "phaseI ms", "phaseII ms",
                   "total ms"});
  for (std::size_t c = 1; c < 11; ++c) t.align_right(c);
  if (any_incomplete != nullptr) *any_incomplete = false;
  for (const MatchRow& r : rows) {
    std::string found = with_commas(static_cast<long long>(r.found));
    if (r.outcome != RunOutcome::kComplete) {
      found += "*";
      if (any_incomplete != nullptr) *any_incomplete = true;
    }
    t.add_row({r.circuit, with_commas(static_cast<long long>(r.devices)),
               with_commas(static_cast<long long>(r.nets)), r.cell,
               with_commas(static_cast<long long>(r.cv)), found,
               with_commas(static_cast<long long>(r.expected)),
               with_commas(static_cast<long long>(r.guesses)),
               format_fixed(r.phase1_ms, 2), format_fixed(r.phase2_ms, 2),
               format_fixed(r.phase1_ms + r.phase2_ms, 2)});
  }
  return t;
}

inline void print_rows(const std::vector<MatchRow>& rows) {
  bool any_incomplete = false;
  std::string s = make_match_table(rows, &any_incomplete).to_string();
  std::fputs(s.c_str(), stdout);
  if (any_incomplete) {
    std::printf("(* = run hit a resource limit; count is a lower bound)\n");
  }
}

/// Shared argv handling for the bench mains: global flags only, no
/// positionals, and only --format applies (benches fix their own workloads
/// and lane counts so rows stay comparable). Returns the format via
/// `format`; a non-zero return is the process exit code.
inline int parse_bench_args(const char* name, int argc, char** argv,
                            cli::Format* format) {
  cli::ParsedArgs parsed = cli::parse_args(argc, argv, 1);
  std::string error = parsed.error;
  if (error.empty() && !parsed.positionals.empty()) {
    error = "unexpected argument '" + parsed.positionals.front() + "'";
  }
  if (error.empty() &&
      (parsed.options.jobs != 0 || parsed.options.lenient ||
       parsed.options.metrics || parsed.options.budget.has_deadline() ||
       !parsed.options.top.empty() || !parsed.options.pattern_top.empty())) {
    error = "only --format=text|json applies to benches";
  }
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s\nusage: %s [--format=text|json]\n", name,
                 error.c_str(), name);
    return 64;
  }
  *format = parsed.options.format;
  return 0;
}

}  // namespace subg::bench
