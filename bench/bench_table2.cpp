// Experiment E6 — the paper's §VI results table (Table-2 style).
//
// The original table reports, per (main circuit, subcircuit) pair, the
// number of instances found and the Phase I / Phase II running times on the
// authors' proprietary CMOS chips. We regenerate the same row format over
// open parameterized workloads (DESIGN.md §4). Absolute milliseconds are
// machine artifacts; the shape to check is: instance counts match the
// construction ground truth, the candidate vector is close to the instance
// count (Phase I filters well), and times stay small even at 10^5 devices.
//
// --format=json emits the same results as one schema_version-1 document
// (tables serialized via report::to_json) instead of the ASCII rendering.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

namespace subg::bench {
namespace {

void run(cli::Format format, CoreMode core, bool quick) {
  cells::CellLibrary lib;
  std::vector<MatchRow> rows;

  auto add = [&](const std::string& name, const gen::Generated& g,
                 std::initializer_list<const char*> cell_names) {
    for (const char* cell : cell_names) {
      rows.push_back(run_match(name, g.netlist, cell, lib.pattern(cell),
                               g.placed_count(cell), 1, core));
    }
  };

  if (quick) {
    // Reduced deterministic workloads for the CI bench-regression gate:
    // same generators and seeds, smaller sizes, every match family still
    // represented (refinement, symmetric guessing, sequential cells).
    add("c17", gen::c17(), {"nand2"});
    add("rca16", gen::ripple_carry_adder(16), {"fulladder", "xor2"});
    add("sram16x32", gen::sram_array(16, 32), {"sram6t", "inv"});
    add("rf4x8", gen::register_file(4, 8), {"dff", "mux2"});
    add("parity64", gen::parity_tree(64), {"xor2"});
    add("soup2k", gen::logic_soup(2000, 1234), {"nand2", "nor2", "dff"});
  } else {
    add("c17", gen::c17(), {"nand2"});
    add("rca64", gen::ripple_carry_adder(64), {"fulladder", "xor2", "nand2"});
    add("mul16", gen::array_multiplier(16),
        {"fulladder", "halfadder", "nand2", "inv"});
    add("sram16x128", gen::sram_array(16, 128), {"sram6t", "nand4", "inv"});
    add("rf16x32", gen::register_file(16, 32), {"dff", "dlatch", "mux2"});
    add("ks64", gen::kogge_stone_adder(64), {"aoi21", "xor2", "nand2"});
    add("parity256", gen::parity_tree(256), {"xor2", "inv"});
    add("soup20k", gen::logic_soup(20000, 1234),
        {"nand2", "nor2", "aoi21", "xor2", "mux2", "dff"});
  }

  // Per-jobs scaling on the two seed-heaviest rows: the candidate sweep
  // runs Phase II seeds on parallel lanes, so these are the workloads
  // where --jobs can pay off. Counts must be identical at every lane
  // count (the determinism contract). Quick mode skips it — the gate
  // compares counters, not lane speedups.
  std::vector<ScalingRow> soup_scaling;
  std::vector<ScalingRow> mul_scaling;
  if (!quick) {
    {
      gen::Generated g = gen::logic_soup(20000, 1234);
      soup_scaling = jobs_scaling(lib.pattern("nand2"), g.netlist);
    }
    {
      gen::Generated g = gen::array_multiplier(16);
      mul_scaling = jobs_scaling(lib.pattern("fulladder"), g.netlist);
    }
  }

  if (format == cli::Format::kJson) {
    write_quick_doc("bench_table2", "E6", core, quick, rows,
                    counters_json(rows), {}, [&](report::Document& doc) {
                      if (quick) return;
                      json::Value scaling = json::Value::array();
                      scaling.push(scaling_json("nand2 in soup20k",
                                                soup_scaling));
                      scaling.push(scaling_json("fulladder in mul16",
                                                mul_scaling));
                      doc.set("scaling", std::move(scaling));
                    });
    return;
  }

  std::printf("E6: gate finding in generated CMOS circuits "
              "(Table-2-style rows)\n\n");
  print_rows(rows);
  if (!quick) {
    print_scaling("nand2 in soup20k", soup_scaling);
    print_scaling("fulladder in mul16", mul_scaling);
  }
  std::printf(
      "\nNotes:\n"
      " - 'expected' is the construction-placed count; 'found' may exceed it\n"
      "   when the workload contains incidental structural copies (e.g. the\n"
      "   dlatch instances inside every dff, inverters inside xor cells).\n"
      " - CV is the Phase I candidate vector size: the number of Phase II\n"
      "   verification attempts.\n");
}

}  // namespace
}  // namespace subg::bench

int main(int argc, char** argv) {
  subg::cli::Format format = subg::cli::Format::kText;
  subg::CoreMode core = subg::CoreMode::kCsr;
  bool quick = false;
  if (int code = subg::bench::parse_bench_args("bench_table2", argc, argv,
                                               &format, &core, &quick)) {
    return code;
  }
  subg::bench::run(format, core, quick);
  return 0;
}
