// Experiment E3 — Fig 5: ambiguity, guessing, and backtracking.
//
// Patterns of k parallel transistors are maximally symmetric: partition
// refinement cannot split them, so Phase II must guess. The paper's point
// is that any guess works (no backtracking) when the host region is a true
// instance. We sweep k and the number of host groups and report guesses,
// backtracks, and time; then add "fat" decoy groups (one extra device)
// whose verification fails after a full refinement, forcing genuine
// backtracking.
#include <cstdio>

#include "match/matcher.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace subg::bench {
namespace {

using namespace subg;

Netlist parallel_pattern(const std::shared_ptr<const DeviceCatalog>& cat, int k) {
  Netlist nl(cat, "par" + std::to_string(k));
  NetId n1 = nl.add_net("n1"), n2 = nl.add_net("n2"), g = nl.add_net("g");
  for (int i = 0; i < k; ++i) nl.add_device(cat->require("nmos"), {n1, g, n2});
  nl.mark_port(n1);
  nl.mark_port(n2);
  nl.mark_port(g);
  return nl;
}

void run() {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");

  std::printf("E3 (Fig 5): symmetric patterns — guesses without backtracks\n\n");
  report::Table t({"k parallel", "host groups", "found", "guesses",
                   "backtracks", "total ms"});
  for (std::size_t c = 0; c < 6; ++c) t.align_right(c);

  for (int k : {2, 3, 4, 6, 8}) {
    for (int groups : {4, 16, 64}) {
      Netlist host(cat, "host");
      for (int gi = 0; gi < groups; ++gi) {
        NetId n1 = host.add_net("a" + std::to_string(gi));
        NetId n2 = host.add_net("b" + std::to_string(gi));
        NetId g = host.add_net("g" + std::to_string(gi));
        for (int i = 0; i < k; ++i) host.add_device(nmos, {n1, g, n2});
      }
      Netlist pattern = parallel_pattern(cat, k);
      Timer timer;
      SubgraphMatcher matcher(pattern, host);
      MatchReport r = matcher.find_all();
      t.add_row({std::to_string(k), std::to_string(groups),
                 with_commas(static_cast<long long>(r.count())),
                 with_commas(static_cast<long long>(r.phase2.guesses)),
                 with_commas(static_cast<long long>(r.phase2.backtracks)),
                 format_fixed(timer.seconds() * 1e3, 2)});
    }
  }
  {
    std::string s = t.to_string();
    std::fputs(s.c_str(), stdout);
  }
  std::printf("\nTrue instances never backtrack: the first guess inside a "
              "symmetric safe partition always completes (Fig 5).\n\n");

  std::printf("Fat-ring decoys (an extra device on one ring net) survive\n"
              "refinement but fail the final verification, forcing genuine\n"
              "backtracking across the mirror-symmetric guess:\n\n");
  report::Table t2({"ring size", "true rings", "decoy rings", "found",
                    "guesses", "backtracks", "verify failures", "total ms"});
  for (std::size_t c = 0; c < 8; ++c) t2.align_right(c);

  auto add_ring = [&](Netlist& nl, int n, const std::string& prefix,
                      bool fat) {
    NetId gate = nl.add_net(prefix + "gate");
    std::vector<NetId> nodes;
    for (int i = 0; i < n; ++i) {
      nodes.push_back(nl.add_net(prefix + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      nl.add_device(nmos, {nodes[i], gate, nodes[(i + 1) % n]});
    }
    if (fat) {
      // Extra device on ring net 1: invisible to safe-only labeling but a
      // violation of the internal-net degree rule at verification time.
      NetId qg = nl.add_net(prefix + "qg"), qd = nl.add_net(prefix + "qd");
      nl.add_device(nmos, {nodes[1], qg, qd});
    }
  };

  for (int k : {4, 6, 8}) {
    for (int decoys : {2, 8, 32}) {
      Netlist host(cat, "host");
      const int groups = 8;
      for (int gi = 0; gi < groups; ++gi) {
        add_ring(host, k, "t" + std::to_string(gi) + "_", false);
      }
      for (int gi = 0; gi < decoys; ++gi) {
        add_ring(host, k, "d" + std::to_string(gi) + "_", true);
      }
      Netlist pattern(cat, "ring" + std::to_string(k));
      add_ring(pattern, k, "r", false);
      pattern.mark_port(*pattern.find_net("rgate"));
      Timer timer;
      SubgraphMatcher matcher(pattern, host);
      MatchReport r = matcher.find_all();
      t2.add_row({std::to_string(k), "8", std::to_string(decoys),
                  with_commas(static_cast<long long>(r.count())),
                  with_commas(static_cast<long long>(r.phase2.guesses)),
                  with_commas(static_cast<long long>(r.phase2.backtracks)),
                  with_commas(static_cast<long long>(r.phase2.verify_failures)),
                  format_fixed(timer.seconds() * 1e3, 2)});
    }
  }
  std::string s2 = t2.to_string();
  std::fputs(s2.c_str(), stdout);
}

}  // namespace
}  // namespace subg::bench

int main() {
  subg::bench::run();
  return 0;
}
