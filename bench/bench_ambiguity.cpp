// Experiment E3 — Fig 5: ambiguity, guessing, and backtracking.
//
// Patterns of k parallel transistors are maximally symmetric: partition
// refinement cannot split them, so Phase II must guess. The paper's point
// is that any guess works (no backtracking) when the host region is a true
// instance. We sweep k and the number of host groups and report guesses,
// backtracks, and time; then add "fat" decoy groups (one extra device)
// whose hypothesis fails after a full refinement, forcing genuine
// backtracking.
//
// Every workload runs three times — path-label prefilter (the default),
// signature prefilter alone, and no prefilter — as separate baseline rows,
// so the CI gate pins BOTH that results are identical and that each
// stronger filter's expansion_ops never exceed the weaker one's wherever
// the prefilter can see the decoys. A third sweep plants long-ring decoys
// (a 12-ring host region probed with a 6-ring pattern) that are invisible
// to the degree-signature check but statically refuted by the path-label
// layer — the decoy A/B the analyzer exists for. --quick trims the sweep
// for the gate; --core selects the matching-core layout (rows are identical
// in both, which the gate checks by running each).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

namespace subg::bench {
namespace {

struct SweepConfig {
  bool quick = false;
  CoreMode core = CoreMode::kCsr;
};

Netlist parallel_pattern(const std::shared_ptr<const DeviceCatalog>& cat,
                         int k) {
  Netlist nl(cat, "par" + std::to_string(k));
  NetId n1 = nl.add_net("n1"), n2 = nl.add_net("n2"), g = nl.add_net("g");
  for (int i = 0; i < k; ++i) nl.add_device(cat->require("nmos"), {n1, g, n2});
  nl.mark_port(n1);
  nl.mark_port(n2);
  nl.mark_port(g);
  return nl;
}

/// Ring of `n` identical pass transistors; `fat` hangs one extra device off
/// ring net 1 — invisible to safe-only labeling, fatal to the hypothesis.
void add_ring(Netlist& nl, DeviceTypeId nmos, int n, const std::string& prefix,
              bool fat) {
  NetId gate = nl.add_net(prefix + "gate");
  std::vector<NetId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(nl.add_net(prefix + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    nl.add_device(nmos, {nodes[i], gate, nodes[(i + 1) % n]});
  }
  if (fat) {
    NetId qg = nl.add_net(prefix + "qg"), qd = nl.add_net(prefix + "qd");
    nl.add_device(nmos, {nodes[1], qg, qd});
  }
}

/// One workload, all three filter modes: the "+sigonly" and "+nofilter"
/// twin rows differ only in MatchOptions::phase2_filter, so the baseline
/// diffs between them ARE the per-layer fast-path savings (paths over
/// signature, signature over census).
void run_trio(const std::string& circuit, const Netlist& host,
              const std::string& cell, const Netlist& pattern,
              std::size_t expected, const SweepConfig& cfg,
              std::vector<MatchRow>* rows) {
  rows->push_back(run_match(circuit, host, cell, pattern, expected, 1,
                            cfg.core, Phase2Filter::kPaths));
  rows->push_back(run_match(circuit + "+sigonly", host, cell, pattern,
                            expected, 1, cfg.core, Phase2Filter::kOn));
  rows->push_back(run_match(circuit + "+nofilter", host, cell, pattern,
                            expected, 1, cfg.core, Phase2Filter::kOff));
}

std::vector<MatchRow> sweep_parallel(const SweepConfig& cfg) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  std::vector<MatchRow> rows;
  const std::vector<int> ks = cfg.quick ? std::vector<int>{3, 6}
                                        : std::vector<int>{2, 3, 4, 6, 8};
  const std::vector<int> group_counts =
      cfg.quick ? std::vector<int>{4, 16} : std::vector<int>{4, 16, 64};
  for (int k : ks) {
    for (int groups : group_counts) {
      Netlist host(cat, "host");
      for (int gi = 0; gi < groups; ++gi) {
        NetId n1 = host.add_net("a" + std::to_string(gi));
        NetId n2 = host.add_net("b" + std::to_string(gi));
        NetId g = host.add_net("g" + std::to_string(gi));
        for (int i = 0; i < k; ++i) host.add_device(nmos, {n1, g, n2});
      }
      Netlist pattern = parallel_pattern(cat, k);
      run_trio("groups" + std::to_string(groups), host, pattern.name(),
               pattern, static_cast<std::size_t>(groups), cfg, &rows);
    }
  }
  return rows;
}

std::vector<MatchRow> sweep_fat_rings(const SweepConfig& cfg) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  std::vector<MatchRow> rows;
  const std::vector<int> ks =
      cfg.quick ? std::vector<int>{6} : std::vector<int>{4, 6, 8};
  const std::vector<int> decoy_counts =
      cfg.quick ? std::vector<int>{2, 8} : std::vector<int>{2, 8, 32};
  const int groups = 8;
  for (int k : ks) {
    for (int decoys : decoy_counts) {
      Netlist host(cat, "host");
      for (int gi = 0; gi < groups; ++gi) {
        add_ring(host, nmos, k, "t" + std::to_string(gi) + "_", false);
      }
      for (int gi = 0; gi < decoys; ++gi) {
        add_ring(host, nmos, k, "d" + std::to_string(gi) + "_", true);
      }
      Netlist pattern(cat, "ring" + std::to_string(k));
      add_ring(pattern, nmos, k, "r", false);
      pattern.mark_port(*pattern.find_net("rgate"));
      run_trio("decoys" + std::to_string(decoys), host, pattern.name(),
               pattern, static_cast<std::size_t>(groups), cfg, &rows);
    }
  }
  return rows;
}

/// Long-ring decoys: the host holds true k-rings plus decoy 2k-rings.
/// Every 2k-ring net has degree 2 exactly like the pattern's internal ring
/// nets, so the degree-signature check is blind and the census must guess
/// its way around each decoy; the path-label refuter counts closed walks
/// and rejects every decoy postulate before the first guess.
std::vector<MatchRow> sweep_long_ring_decoys(const SweepConfig& cfg) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  std::vector<MatchRow> rows;
  const int k = 6;
  const int groups = cfg.quick ? 2 : 4;
  const std::vector<int> decoy_counts =
      cfg.quick ? std::vector<int>{4} : std::vector<int>{4, 16};
  for (int decoys : decoy_counts) {
    Netlist host(cat, "host");
    for (int gi = 0; gi < groups; ++gi) {
      add_ring(host, nmos, k, "t" + std::to_string(gi) + "_", false);
    }
    for (int gi = 0; gi < decoys; ++gi) {
      add_ring(host, nmos, 2 * k, "d" + std::to_string(gi) + "_", false);
    }
    Netlist pattern(cat, "ring" + std::to_string(k));
    add_ring(pattern, nmos, k, "r", false);
    pattern.mark_port(*pattern.find_net("rgate"));
    run_trio("longdecoys" + std::to_string(decoys), host, pattern.name(),
             pattern, static_cast<std::size_t>(groups), cfg, &rows);
  }
  return rows;
}

report::Table ambiguity_table(const std::vector<MatchRow>& rows) {
  report::Table t({"circuit", "subcircuit", "found", "guesses", "backtracks",
                   "domain prunes", "path prunes", "nogood hits",
                   "trail undos", "expansion ops", "total ms"});
  for (std::size_t c = 2; c < 11; ++c) t.align_right(c);
  for (const MatchRow& r : rows) {
    t.add_row({r.circuit, r.cell,
               with_commas(static_cast<long long>(r.found)),
               with_commas(static_cast<long long>(r.guesses)),
               with_commas(static_cast<long long>(r.backtracks)),
               with_commas(static_cast<long long>(r.domain_prunes)),
               with_commas(static_cast<long long>(r.path_label_prunes)),
               with_commas(static_cast<long long>(r.nogood_hits)),
               with_commas(static_cast<long long>(r.trail_undos)),
               with_commas(static_cast<long long>(r.expansion_ops)),
               format_fixed(r.phase1_ms + r.phase2_ms, 2)});
  }
  return t;
}

/// Filter-mode sanity across each trio: identical results, and each
/// stronger filter never does more relabeling work than the weaker one.
/// Printed as advisory text; the exact values are what the CI gate pins.
void print_ab_summary(const std::vector<MatchRow>& rows) {
  for (std::size_t i = 0; i + 2 < rows.size(); i += 3) {
    const MatchRow& paths = rows[i];
    const MatchRow& sig = rows[i + 1];
    const MatchRow& off = rows[i + 2];
    if (paths.found != off.found || sig.found != off.found) {
      std::printf("WARNING: %s/%s found-count diverged across filter modes "
                  "(soundness contract violated)\n",
                  paths.circuit.c_str(), paths.cell.c_str());
    }
    if (sig.expansion_ops > off.expansion_ops ||
        paths.expansion_ops > sig.expansion_ops) {
      std::printf("WARNING: %s/%s a stronger filter did MORE relabeling work "
                  "(%zu paths / %zu sig / %zu census expansion ops)\n",
                  paths.circuit.c_str(), paths.cell.c_str(),
                  paths.expansion_ops, sig.expansion_ops, off.expansion_ops);
    }
  }
}

}  // namespace
}  // namespace subg::bench

int main(int argc, char** argv) {
  using namespace subg::bench;
  subg::cli::Format format = subg::cli::Format::kText;
  SweepConfig cfg;
  if (int code = parse_bench_args("bench_ambiguity", argc, argv, &format,
                                  &cfg.core, &cfg.quick)) {
    return code;
  }

  std::vector<MatchRow> parallel_rows = sweep_parallel(cfg);
  std::vector<MatchRow> ring_rows = sweep_fat_rings(cfg);
  std::vector<MatchRow> decoy_rows = sweep_long_ring_decoys(cfg);
  std::vector<MatchRow> all = parallel_rows;
  all.insert(all.end(), ring_rows.begin(), ring_rows.end());
  all.insert(all.end(), decoy_rows.begin(), decoy_rows.end());

  if (format == subg::cli::Format::kJson) {
    subg::report::Document doc("bench_ambiguity", "E3");
    doc.set("core", subg::to_string(cfg.core));
    doc.set("quick", cfg.quick);
    doc.set("parallel", subg::report::to_json(ambiguity_table(parallel_rows)));
    doc.set("fat_rings", subg::report::to_json(ambiguity_table(ring_rows)));
    doc.set("long_ring_decoys",
            subg::report::to_json(ambiguity_table(decoy_rows)));
    doc.set("counters", counters_json(all));
    doc.set("timings", timings_json(all));
    doc.write(std::cout);
    return 0;
  }

  std::printf("E3 (Fig 5): symmetric patterns — guesses without backtracks\n"
              "(each workload three times: path-label prefilter, signature\n"
              "prefilter alone, no prefilter)\n\n");
  {
    std::string s = ambiguity_table(parallel_rows).to_string();
    std::fputs(s.c_str(), stdout);
  }
  std::printf("\nTrue instances never backtrack: the first guess inside a "
              "symmetric safe partition always completes (Fig 5).\n\n");
  std::printf("Fat-ring decoys (an extra device on one ring net) survive\n"
              "refinement but fail the hypothesis, forcing genuine\n"
              "backtracking — unless the signature prefilter refutes the\n"
              "decoy's degree-3 ring net up front:\n\n");
  {
    std::string s = ambiguity_table(ring_rows).to_string();
    std::fputs(s.c_str(), stdout);
  }
  std::printf("\nLong-ring decoys (12-rings probed with a 6-ring pattern)\n"
              "show identical degrees everywhere, blinding the signature\n"
              "check; only the path-label refuter rejects them before the\n"
              "first guess:\n\n");
  {
    std::string s = ambiguity_table(decoy_rows).to_string();
    std::fputs(s.c_str(), stdout);
  }
  std::printf("\n");
  print_ab_summary(all);
  return 0;
}
