// Experiment E5 — the paper's headline claim (abstract, §I):
//
//   "the typical running time for large CMOS circuits is approximately
//    linear in the total number of devices within the subcircuits being
//    matched."
//
// We sweep host size on two families (ripple-carry adders searched for
// fulladder cells; SRAM arrays searched for 6T cells), measure the total
// matching time, and regress it against the total matched-device count.
// The regenerated figure is the printed (x, y) series; the fit's R² and
// the log-log scaling exponent quantify "approximately linear" (exponent
// ≈ 1).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace subg::bench {
namespace {

struct Point {
  std::size_t host_devices;
  std::size_t matched_devices;
  double ms;
};

std::vector<Point> sweep_adders(cells::CellLibrary& lib) {
  std::vector<Point> pts;
  Netlist pattern = lib.pattern("fulladder");
  for (int bits : {8, 16, 32, 64, 128, 256, 512}) {
    gen::Generated g = gen::ripple_carry_adder(bits);
    // Median-of-3 timing.
    double best_ms = 1e100;
    std::size_t matched = 0;
    for (int rep = 0; rep < 3; ++rep) {
      SubgraphMatcher matcher(pattern, g.netlist);
      Timer timer;
      MatchReport r = matcher.find_all();
      best_ms = std::min(best_ms, timer.seconds() * 1e3);
      matched = r.count() * pattern.device_count();
    }
    pts.push_back({g.netlist.device_count(), matched, best_ms});
  }
  return pts;
}

std::vector<Point> sweep_sram(cells::CellLibrary& lib) {
  std::vector<Point> pts;
  Netlist pattern = lib.pattern("sram6t");
  for (int cols : {16, 32, 64, 128, 256, 512}) {
    gen::Generated g = gen::sram_array(16, cols);
    double best_ms = 1e100;
    std::size_t matched = 0;
    for (int rep = 0; rep < 3; ++rep) {
      SubgraphMatcher matcher(pattern, g.netlist);
      Timer timer;
      MatchReport r = matcher.find_all();
      best_ms = std::min(best_ms, timer.seconds() * 1e3);
      matched = r.count() * pattern.device_count();
    }
    pts.push_back({g.netlist.device_count(), matched, best_ms});
  }
  return pts;
}

void report_series(const char* name, const std::vector<Point>& pts) {
  std::printf("\n%s\n", name);
  report::Table t({"host devices", "matched devices", "time ms",
                   "us per matched device"});
  for (std::size_t c = 0; c < 4; ++c) t.align_right(c);
  std::vector<double> x, y;
  for (const Point& p : pts) {
    t.add_row({with_commas(static_cast<long long>(p.host_devices)),
               with_commas(static_cast<long long>(p.matched_devices)),
               format_fixed(p.ms, 2),
               format_fixed(p.ms * 1e3 / static_cast<double>(p.matched_devices),
                            3)});
    x.push_back(static_cast<double>(p.matched_devices));
    y.push_back(p.ms);
  }
  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);
  report::LinearFit fit = report::fit_line(x, y);
  double expo = report::scaling_exponent(x, y);
  std::printf("linear fit: time_ms = %.6f * matched + %.3f   R^2 = %.4f\n",
              fit.slope, fit.intercept, fit.r2);
  std::printf("log-log scaling exponent: %.3f (paper claims ~1.0)\n", expo);
}

}  // namespace
}  // namespace subg::bench

int main() {
  using namespace subg::bench;
  std::printf("E5: running time vs total devices inside matched subcircuits\n");
  subg::cells::CellLibrary lib;
  report_series("fulladder in ripple-carry adders", sweep_adders(lib));
  report_series("sram6t in 16-row SRAM arrays", sweep_sram(lib));

  // Per-jobs scaling on the largest host of each family. The candidate
  // sweep parallelizes over Phase II seeds, so speedup tracks the seed
  // count; the found-count must be identical at every lane count.
  {
    subg::gen::Generated g = subg::gen::ripple_carry_adder(512);
    print_scaling("fulladder in rca512",
                  jobs_scaling(lib.pattern("fulladder"), g.netlist));
  }
  {
    subg::gen::Generated g = subg::gen::sram_array(16, 512);
    print_scaling("sram6t in sram16x512",
                  jobs_scaling(lib.pattern("sram6t"), g.netlist));
  }
  return 0;
}
