// Experiment E5 — the paper's headline claim (abstract, §I):
//
//   "the typical running time for large CMOS circuits is approximately
//    linear in the total number of devices within the subcircuits being
//    matched."
//
// We sweep host size on two families (ripple-carry adders searched for
// fulladder cells; SRAM arrays searched for 6T cells), measure the total
// matching time, and regress it against the total matched-device count.
// The regenerated figure is the printed (x, y) series; the fit's R² and
// the log-log scaling exponent quantify "approximately linear" (exponent
// ≈ 1).
//
// --format=json emits the series tables, fits (report::to_json(LinearFit)),
// and scaling exponents as one schema_version-1 document.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

namespace subg::bench {
namespace {

struct Point {
  std::size_t host_devices;
  std::size_t matched_devices;
  double ms;
};

/// The sweep config: quick mode (CI bench gate) trims the size ladder and
/// the timing reps — the deterministic counters are identical per size
/// either way, only the regression quality degrades.
struct SweepConfig {
  bool quick = false;
  CoreMode core = CoreMode::kCsr;
};

std::vector<Point> sweep_adders(cells::CellLibrary& lib,
                                const SweepConfig& cfg,
                                std::vector<MatchRow>* rows) {
  std::vector<Point> pts;
  Netlist pattern = lib.pattern("fulladder");
  const std::vector<int> sizes =
      cfg.quick ? std::vector<int>{8, 16, 32}
                : std::vector<int>{8, 16, 32, 64, 128, 256, 512};
  const int reps = cfg.quick ? 1 : 3;
  for (int bits : sizes) {
    gen::Generated g = gen::ripple_carry_adder(bits);
    // Best-of-`reps` timing; the counters are rep-invariant.
    double best_ms = 1e100;
    MatchRow row;
    for (int rep = 0; rep < reps; ++rep) {
      row = run_match("rca" + std::to_string(bits), g.netlist, "fulladder",
                      pattern, g.placed_count("fulladder"), 1, cfg.core);
      best_ms = std::min(best_ms, row.phase1_ms + row.phase2_ms);
    }
    pts.push_back(
        {g.netlist.device_count(), row.found * pattern.device_count(),
         best_ms});
    if (rows != nullptr) rows->push_back(row);
  }
  return pts;
}

std::vector<Point> sweep_sram(cells::CellLibrary& lib, const SweepConfig& cfg,
                              std::vector<MatchRow>* rows) {
  std::vector<Point> pts;
  Netlist pattern = lib.pattern("sram6t");
  const std::vector<int> sizes =
      cfg.quick ? std::vector<int>{16, 32}
                : std::vector<int>{16, 32, 64, 128, 256, 512};
  const int reps = cfg.quick ? 1 : 3;
  for (int cols : sizes) {
    gen::Generated g = gen::sram_array(16, cols);
    double best_ms = 1e100;
    MatchRow row;
    for (int rep = 0; rep < reps; ++rep) {
      row = run_match("sram16x" + std::to_string(cols), g.netlist, "sram6t",
                      pattern, g.placed_count("sram6t"), 1, cfg.core);
      best_ms = std::min(best_ms, row.phase1_ms + row.phase2_ms);
    }
    pts.push_back(
        {g.netlist.device_count(), row.found * pattern.device_count(),
         best_ms});
    if (rows != nullptr) rows->push_back(row);
  }
  return pts;
}

/// One family's series table plus its regression numbers.
struct Series {
  std::string name;
  report::Table table;
  report::LinearFit fit;
  double exponent = 0;
};

Series make_series(const char* name, const std::vector<Point>& pts) {
  Series out{name,
             report::Table({"host devices", "matched devices", "time ms",
                            "us per matched device"}),
             {},
             0};
  for (std::size_t c = 0; c < 4; ++c) out.table.align_right(c);
  std::vector<double> x, y;
  for (const Point& p : pts) {
    out.table.add_row(
        {with_commas(static_cast<long long>(p.host_devices)),
         with_commas(static_cast<long long>(p.matched_devices)),
         format_fixed(p.ms, 2),
         format_fixed(p.ms * 1e3 / static_cast<double>(p.matched_devices),
                      3)});
    x.push_back(static_cast<double>(p.matched_devices));
    y.push_back(p.ms);
  }
  out.fit = report::fit_line(x, y);
  out.exponent = report::scaling_exponent(x, y);
  return out;
}

void print_series(const Series& series) {
  std::printf("\n%s\n", series.name.c_str());
  std::string s = series.table.to_string();
  std::fputs(s.c_str(), stdout);
  std::printf("linear fit: time_ms = %.6f * matched + %.3f   R^2 = %.4f\n",
              series.fit.slope, series.fit.intercept, series.fit.r2);
  std::printf("log-log scaling exponent: %.3f (paper claims ~1.0)\n",
              series.exponent);
}

json::Value series_json(const Series& series) {
  json::Value v = json::Value::object();
  v.set("name", series.name);
  v.set("table", report::to_json(series.table));
  v.set("fit", report::to_json(series.fit));
  v.set("scaling_exponent", series.exponent);
  return v;
}

}  // namespace
}  // namespace subg::bench

int main(int argc, char** argv) {
  using namespace subg::bench;
  subg::cli::Format format = subg::cli::Format::kText;
  SweepConfig cfg;
  if (int code = parse_bench_args("bench_linearity", argc, argv, &format,
                                  &cfg.core, &cfg.quick)) {
    return code;
  }

  subg::cells::CellLibrary lib;
  std::vector<MatchRow> rows;
  Series adders = make_series("fulladder in ripple-carry adders",
                              sweep_adders(lib, cfg, &rows));
  Series sram = make_series("sram6t in 16-row SRAM arrays",
                            sweep_sram(lib, cfg, &rows));

  // Per-jobs scaling on the largest host of each family. The candidate
  // sweep parallelizes over Phase II seeds, so speedup tracks the seed
  // count; the found-count must be identical at every lane count. Quick
  // mode skips it — the gate compares counters, not lane speedups.
  std::vector<ScalingRow> rca_scaling;
  std::vector<ScalingRow> sram_scaling;
  if (!cfg.quick) {
    {
      subg::gen::Generated g = subg::gen::ripple_carry_adder(512);
      rca_scaling = jobs_scaling(lib.pattern("fulladder"), g.netlist);
    }
    {
      subg::gen::Generated g = subg::gen::sram_array(16, 512);
      sram_scaling = jobs_scaling(lib.pattern("sram6t"), g.netlist);
    }
  }

  if (format == subg::cli::Format::kJson) {
    subg::report::Document doc("bench_linearity", "E5");
    doc.set("core", subg::to_string(cfg.core));
    doc.set("quick", cfg.quick);
    subg::json::Value series = subg::json::Value::array();
    series.push(series_json(adders));
    series.push(series_json(sram));
    doc.set("series", std::move(series));
    doc.set("counters", counters_json(rows));
    doc.set("timings", timings_json(rows));
    if (!cfg.quick) {
      subg::json::Value scaling = subg::json::Value::array();
      scaling.push(scaling_json("fulladder in rca512", rca_scaling));
      scaling.push(scaling_json("sram6t in sram16x512", sram_scaling));
      doc.set("scaling", std::move(scaling));
    }
    doc.write(std::cout);
    return 0;
  }

  std::printf("E5: running time vs total devices inside matched subcircuits\n");
  print_series(adders);
  print_series(sram);
  if (!cfg.quick) {
    print_scaling("fulladder in rca512", rca_scaling);
    print_scaling("sram6t in sram16x512", sram_scaling);
  }
  return 0;
}
