// Experiments E1/E10 — Phase I filter quality.
//
// Phase I's whole purpose (§III) is to hand Phase II a candidate vector
// barely larger than the true instance set. We measure, across patterns and
// workloads: CV size vs instances found (precision = found/CV), surviving
// "possible" host vertices after consistency pruning, relabeling rounds,
// and Phase I's share of total time.
#include <cstdio>

#include "bench_common.hpp"
#include "match/phase1.hpp"

namespace subg::bench {
namespace {

void run() {
  cells::CellLibrary lib;
  std::printf("E10: Phase I candidate-vector quality\n\n");

  report::Table t({"host", "pattern", "rounds", "possible/host vtx", "CV",
                   "found", "precision", "phaseI share"});
  for (std::size_t c = 2; c < 8; ++c) t.align_right(c);

  struct Task {
    std::string host_name;
    gen::Generated host;
    const char* cell;
  };
  std::vector<Task> tasks;
  tasks.push_back({"rca64", gen::ripple_carry_adder(64), "fulladder"});
  tasks.push_back({"rca64", gen::ripple_carry_adder(64), "xor2"});
  tasks.push_back({"rca64", gen::ripple_carry_adder(64), "nand2"});
  tasks.push_back({"rca64", gen::ripple_carry_adder(64), "inv"});
  tasks.push_back({"mul12", gen::array_multiplier(12), "fulladder"});
  tasks.push_back({"mul12", gen::array_multiplier(12), "halfadder"});
  tasks.push_back({"sram16x64", gen::sram_array(16, 64), "sram6t"});
  tasks.push_back({"soup5k", gen::logic_soup(5000, 3), "aoi21"});
  tasks.push_back({"soup5k", gen::logic_soup(5000, 3), "xor2"});
  tasks.push_back({"soup5k", gen::logic_soup(5000, 3), "dff"});

  for (Task& task : tasks) {
    Netlist pattern = lib.pattern(task.cell);
    SubgraphMatcher matcher(pattern, task.host.netlist);
    MatchReport r = matcher.find_all();
    const std::size_t host_vtx =
        task.host.netlist.device_count() + task.host.netlist.net_count();
    const double precision =
        r.phase1.candidates.empty()
            ? 0.0
            : static_cast<double>(r.count()) /
                  static_cast<double>(r.phase1.candidates.size());
    const double share =
        r.total_seconds() > 0 ? r.phase1_seconds / r.total_seconds() : 0.0;
    t.add_row({task.host_name, task.cell, std::to_string(r.phase1.rounds),
               with_commas(static_cast<long long>(r.phase1.possible_host_vertices)) +
                   "/" + with_commas(static_cast<long long>(host_vtx)),
               with_commas(static_cast<long long>(r.phase1.candidates.size())),
               with_commas(static_cast<long long>(r.count())),
               format_fixed(precision, 3), format_fixed(share, 2)});
  }
  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);
  std::printf(
      "\nprecision = found / CV  (1.0 means Phase I admitted no false "
      "candidates).\n"
      "Patterns with internal nets (fulladder, sram6t) filter best; an\n"
      "inverter has only external nets, so its CV is every same-type device\n"
      "(the paper's motivation for special rails and extraction order).\n");
}

}  // namespace
}  // namespace subg::bench

int main() {
  subg::bench::run();
  return 0;
}
