// Experiment E7 — SubGemini vs generic subgraph-isomorphism baselines.
//
// The paper's §I motivates the two-phase design against (a) generic
// algorithms that ignore circuit structure and (b) "exhaustive search from
// the key vertex" (§IV, ref [6]). We time all three on identical tasks and
// growing hosts. Expected shape: SubGemini and the baselines agree on the
// instance counts; SubGemini's advantage grows with host size; the DFS
// baseline degrades worst (its node counts explode on symmetric patterns).
#include <cstdio>

#include "baseline/baseline.hpp"
#include "bench_common.hpp"

namespace subg::bench {
namespace {

void run() {
  cells::CellLibrary lib;
  std::printf("E7: SubGemini vs Ullmann vs VF2-style DFS\n\n");

  report::Table t({"host", "devices", "pattern", "found", "subgemini ms",
                   "ullmann ms", "vf2-dfs ms", "speedup vs ullmann",
                   "speedup vs dfs"});
  for (std::size_t c = 1; c < 9; ++c) t.align_right(c);

  struct Task {
    std::string host_name;
    gen::Generated host;
    const char* cell;
  };
  std::vector<Task> tasks;
  for (int bits : {4, 8, 16, 32}) {
    tasks.push_back(Task{"rca" + std::to_string(bits),
                         gen::ripple_carry_adder(bits), "xor2"});
  }
  for (std::size_t gates : {250u, 500u, 1000u}) {
    tasks.push_back(Task{"soup" + std::to_string(gates),
                         gen::logic_soup(gates, 77), "nand2"});
  }
  // Symmetric pattern on the same soups: the DFS baseline's weak spot.
  for (std::size_t gates : {250u, 500u}) {
    tasks.push_back(Task{"soup" + std::to_string(gates),
                         gen::logic_soup(gates, 77), "xor2"});
  }
  tasks.push_back(Task{"sram16x16", gen::sram_array(16, 16), "sram6t"});

  for (Task& task : tasks) {
    Netlist pattern = lib.pattern(task.cell);

    Timer timer;
    SubgraphMatcher matcher(pattern, task.host.netlist);
    MatchReport sub = matcher.find_all();
    const double sub_ms = timer.seconds() * 1e3;

    BaselineOptions opts;
    opts.node_budget = 50'000'000;
    BaselineResult ull = match_ullmann(pattern, task.host.netlist, opts);
    BaselineResult dfs = match_vf2(pattern, task.host.netlist, opts);

    auto fmt_baseline = [](const BaselineResult& r) {
      std::string s = format_fixed(r.seconds * 1e3, 2);
      if (!r.status.complete()) s += "*";
      return s;
    };
    std::string sub_found = with_commas(static_cast<long long>(sub.count()));
    if (!sub.status.complete()) sub_found += "*";
    t.add_row({task.host_name,
               with_commas(static_cast<long long>(task.host.netlist.device_count())),
               task.cell, sub_found,
               format_fixed(sub_ms, 2), fmt_baseline(ull), fmt_baseline(dfs),
               format_fixed(ull.seconds * 1e3 / std::max(sub_ms, 1e-3), 1) + "x",
               format_fixed(dfs.seconds * 1e3 / std::max(sub_ms, 1e-3), 1) + "x"});

    // A count disagreement only indicts correctness when both sweeps ran to
    // completion; a truncated side only guarantees a lower bound.
    if (sub.count() != ull.count() && ull.status.complete() &&
        sub.status.complete()) {
      std::printf("!! count mismatch on %s/%s: subgemini=%zu ullmann=%zu\n",
                  task.host_name.c_str(), task.cell, sub.count(), ull.count());
    }
  }

  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);
  std::printf("\n(* = run aborted at a resource limit — search-node budget, "
              "deadline, or cancellation; counts and times are lower "
              "bounds)\n");
}

}  // namespace
}  // namespace subg::bench

int main() {
  subg::bench::run();
  return 0;
}
